package core

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/resultstore"
	"repro/internal/resultstore/httpbackend"
)

// The degrade-to-cacheless bar: a scan over a result-store backend that is
// down, flaky or lying must produce findings byte-identical to a scan with no
// store at all — the backend may change the stats, never the report. Each
// suite runs sequential and parallel schedules, because the degraded paths
// (miss, quarantine, breaker refusal) interleave differently under
// concurrency.

func backendChaosOpts(par int) Options {
	opts := incrementalOpts()
	opts.Parallelism = par
	return opts
}

// cachelessKeys is the reference report: the same engine and corpus with no
// store attached.
func cachelessKeys(t *testing.T, par int) []string {
	t.Helper()
	e := newTestEngine(t, backendChaosOpts(par))
	rep, err := e.Analyze(LoadMap("app", incrementalFiles()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Findings) == 0 {
		t.Fatal("corpus produced no findings; the determinism bar is vacuous")
	}
	return findingKeys(rep)
}

// openChaosStore wraps b in a retry-free fault envelope (tests drive each
// fault deterministically; the retry ladder has its own unit suite) and a
// write-behind store, the production composition for remote tiers.
func openChaosStore(t *testing.T, b resultstore.Backend, threshold int) *resultstore.Store {
	t.Helper()
	env := resultstore.NewEnvelope(b, resultstore.EnvelopeConfig{
		RetryMax:         -1,
		BreakerThreshold: threshold,
		BreakerCooldown:  time.Hour, // never half-opens mid-test
	})
	store, err := resultstore.OpenBackend(env, resultstore.Options{WriteBehind: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

func TestScanOverDownBackendMatchesCacheless(t *testing.T) {
	for _, par := range []int{1, 3} {
		want := cachelessKeys(t, par)
		mem := resultstore.NewMemBackend()
		mem.GetHook = func(string) error { return errors.New("tier down") }
		mem.PutHook = func(string, []byte) error { return errors.New("tier down") }
		store := openChaosStore(t, mem, -1)

		for scan := 1; scan <= 2; scan++ {
			rep := scanWithStore(t, backendChaosOpts(par), incrementalFiles(), store)
			if got := findingKeys(rep); !equalStrings(got, want) {
				t.Fatalf("parallelism %d scan %d over a down backend: findings diverged from cache-less\n got %v\nwant %v",
					par, scan, got, want)
			}
			if rep.Stats.Backend == nil || rep.Stats.Backend.Degraded == 0 {
				t.Fatalf("parallelism %d scan %d: backend account missing the degraded loads: %+v",
					par, scan, rep.Stats.Backend)
			}
			if rep.Stats.Backend.Hits != 0 {
				t.Errorf("parallelism %d: a down backend reported %d hits", par, rep.Stats.Backend.Hits)
			}
		}
		// The failed background writes are accounted, and nothing reached
		// the tier.
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := store.Flush(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		if st := store.BackendState(); st.WriteErrors == 0 || st.Written != 0 {
			t.Errorf("parallelism %d: write account over a down tier = %+v, want write errors and nothing written", par, st)
		}
		if mem.Len() != 0 {
			t.Errorf("parallelism %d: down tier stored %d blobs", par, mem.Len())
		}
	}
}

func TestScanOverFlakyBackendMatchesCacheless(t *testing.T) {
	for _, par := range []int{1, 3} {
		want := cachelessKeys(t, par)
		mem := resultstore.NewMemBackend()
		var calls atomic.Int64
		mem.GetHook = func(string) error {
			if calls.Add(1)%2 == 1 {
				return errors.New("flaky tier")
			}
			return nil
		}
		store := openChaosStore(t, mem, -1)

		// Several scans: loads alternate between degraded misses and (once
		// the write-behind landed a snapshot) genuine hits. Every report must
		// match the cache-less reference regardless.
		var st *resultstore.BackendState
		for scan := 1; scan <= 4; scan++ {
			rep := scanWithStore(t, backendChaosOpts(par), incrementalFiles(), store)
			if got := findingKeys(rep); !equalStrings(got, want) {
				t.Fatalf("parallelism %d scan %d over a flaky backend: findings diverged from cache-less", par, scan)
			}
			st = rep.Stats.Backend
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := store.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
		}
		if st.Degraded == 0 {
			t.Errorf("parallelism %d: flaky tier never degraded a load: %+v", par, st)
		}
		if st.Hits == 0 {
			t.Errorf("parallelism %d: flaky tier never served a hit — the flakiness drowned the comparison: %+v", par, st)
		}
	}
}

func TestScanOverLyingHTTPTierMatchesCacheless(t *testing.T) {
	for _, mode := range []chaos.NetMode{chaos.NetTornBody, chaos.NetCorruptBody} {
		for _, par := range []int{1, 3} {
			want := cachelessKeys(t, par)

			// A real tier: the blob protocol served over HTTP from a memory
			// backend, warmed by one honest scan.
			mem := resultstore.NewMemBackend()
			srv := httptest.NewServer(httpbackend.Handler(mem))
			honest := openChaosStore(t, httpbackend.New(srv.URL, nil), -1)
			rep := scanWithStore(t, backendChaosOpts(par), incrementalFiles(), honest)
			if got := findingKeys(rep); !equalStrings(got, want) {
				t.Fatalf("%s parallelism %d: honest warm-up diverged", mode, par)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := honest.Flush(ctx); err != nil {
				t.Fatal(err)
			}
			cancel()
			if mem.Len() == 0 {
				t.Fatal("warm-up stored nothing; the lying-tier scan would be vacuous")
			}

			// Now the network lies: every GET payload is torn or bit-flipped
			// at the transport seam. Verify-on-read must catch it, quarantine
			// the blob, and degrade the scan to cache-less.
			rt := chaos.NewRoundTripper(nil)
			rt.Add(chaos.NetRule{Method: http.MethodGet, Path: "/cas/", Mode: mode})
			lying := openChaosStore(t, httpbackend.New(srv.URL, &http.Client{Transport: rt}), -1)
			rep = scanWithStore(t, backendChaosOpts(par), incrementalFiles(), lying)
			if got := findingKeys(rep); !equalStrings(got, want) {
				t.Fatalf("%s parallelism %d: findings diverged under a lying tier\n got %v\nwant %v",
					mode, par, got, want)
			}
			st := rep.Stats.Backend
			if st == nil || st.Corrupt == 0 {
				t.Fatalf("%s parallelism %d: corrupt payload not accounted: %+v", mode, par, st)
			}
			if st.Hits != 0 {
				t.Errorf("%s parallelism %d: a lying tier served %d hits past verification", mode, par, st.Hits)
			}
			if rt.Requests() == 0 {
				t.Fatal("lying scan never touched the network seam")
			}
			srv.Close()
		}
	}
}

func TestBackendBreakerOpensDuringScans(t *testing.T) {
	mem := resultstore.NewMemBackend()
	mem.GetHook = func(string) error { return errors.New("tier down") }
	mem.PutHook = func(string, []byte) error { return errors.New("tier down") }
	store := openChaosStore(t, mem, 1)
	want := cachelessKeys(t, 1)

	// First scan: the load's failure trips the breaker at threshold 1.
	rep := scanWithStore(t, backendChaosOpts(1), incrementalFiles(), store)
	if got := findingKeys(rep); !equalStrings(got, want) {
		t.Fatal("findings diverged while the breaker tripped")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := store.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st := store.BackendState()
	if st.Envelope == nil || st.Envelope.Breaker != resultstore.BreakerOpen {
		t.Fatalf("breaker = %+v after a failing scan at threshold 1, want open", st.Envelope)
	}

	// Second scan: the open breaker refuses ops outright — still the same
	// findings, and the tier is not hammered while it is down.
	rep = scanWithStore(t, backendChaosOpts(1), incrementalFiles(), store)
	if got := findingKeys(rep); !equalStrings(got, want) {
		t.Fatal("findings diverged under an open breaker")
	}
	if err := store.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	st = store.BackendState()
	if st.Envelope.Refused == 0 {
		t.Errorf("open breaker refused nothing: %+v", st.Envelope)
	}
	if rep.Stats.Backend == nil || rep.Stats.Backend.Degraded == 0 {
		t.Errorf("breaker-refused load not accounted as degraded: %+v", rep.Stats.Backend)
	}
}

// TestScanStatsBackendNilForPlainDisk pins the legacy surface: a store over
// the default local-disk tier reports no backend account, so existing
// text/JSON/HTML output and healthz payloads are unchanged.
func TestScanStatsBackendNilForPlainDisk(t *testing.T) {
	store := openTestStore(t, t.TempDir())
	rep := scanWithStore(t, incrementalOpts(), incrementalFiles(), store)
	if rep.Stats.Backend != nil {
		t.Fatalf("plain-disk scan reports a backend account: %+v", rep.Stats.Backend)
	}
}
