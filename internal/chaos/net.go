package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The network seam mirrors the filesystem seam one layer up: the HTTP
// result-store backend performs every remote operation through an
// http.RoundTripper, and tests swap in a RoundTripper that fails requests,
// delays them, tears response bodies short, or flips bytes in the payload on
// a schedule. Faults are injected at the transport boundary — after the
// client has built the request, before the caller sees the response — which
// is exactly where a real network would lose, delay or corrupt them, so the
// fault envelope and the verify-on-read hash check above are exercised
// end to end without a flaky proxy or iptables.

// NetMode selects how a matched network rule corrupts the exchange.
type NetMode int

// Network fault modes.
const (
	// NetFail returns a transport error without performing the request —
	// a refused connection or a cut cable.
	NetFail NetMode = iota
	// NetSlow delays the request by the rule's Delay, then performs it —
	// a congested or half-dead tier. Combined with the backend envelope's
	// per-op deadline this is how timeout behavior is driven.
	NetSlow
	// NetTornBody performs the request but truncates the response body to
	// its first half, adjusting Content-Length so the truncation looks like
	// a complete (but wrong) payload — only content verification catches it.
	NetTornBody
	// NetCorruptBody performs the request and flips one byte in the middle
	// of the response body — bit rot in flight or in the remote tier.
	NetCorruptBody
)

// String names the mode for error messages.
func (m NetMode) String() string {
	switch m {
	case NetSlow:
		return "slow"
	case NetTornBody:
		return "torn-body"
	case NetCorruptBody:
		return "corrupt-body"
	default:
		return "fail"
	}
}

// NetRule schedules one network fault: the Nth-and-later matching requests
// (by method and URL path substring) fire Mode, Count times (0 = forever).
type NetRule struct {
	// Method matches the request method exactly; "" matches all.
	Method string
	// Path is a substring match on the request URL path; "" matches all.
	Path string
	// After is how many matching requests pass through before the rule fires.
	After int
	// Count bounds how many times the rule fires; 0 means no bound.
	Count int
	Mode  NetMode
	// Delay is the injected latency for NetSlow.
	Delay time.Duration
	// Err overrides ErrInjected as the transport error for NetFail.
	Err error
}

type netRuleState struct {
	NetRule
	seen  int
	fired int
}

// RoundTripper wraps an http.RoundTripper with scheduled network faults. It
// is safe for concurrent use and counts every request it sees, fault or not,
// so tests can assert the code under test actually went through the seam.
type RoundTripper struct {
	rt    http.RoundTripper
	mu    sync.Mutex
	rules []*netRuleState
	reqs  int
}

// NewRoundTripper wraps rt (nil means http.DefaultTransport) with an empty
// schedule.
func NewRoundTripper(rt http.RoundTripper) *RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return &RoundTripper{rt: rt}
}

// Add appends a rule to the schedule.
func (t *RoundTripper) Add(r NetRule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = append(t.rules, &netRuleState{NetRule: r})
}

// Reset clears the schedule and the request counter.
func (t *RoundTripper) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rules = nil
	t.reqs = 0
}

// Requests reports how many requests went through the seam.
func (t *RoundTripper) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reqs
}

func (t *RoundTripper) match(method, path string) *netRuleState {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reqs++
	for _, r := range t.rules {
		if r.Method != "" && r.Method != method {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		return r
	}
	return nil
}

func (r *netRuleState) err() error {
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("%w (net %s %s)", ErrInjected, r.Method, r.Mode.String())
}

// RoundTrip applies the schedule, then delegates. Body-corrupting modes read
// the whole response, mutate it, and hand back a replacement body with a
// consistent Content-Length, so the fault is indistinguishable from a remote
// tier that stored or served the payload wrong.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	r := t.match(req.Method, req.URL.Path)
	if r == nil {
		return t.rt.RoundTrip(req)
	}
	switch r.Mode {
	case NetFail:
		return nil, r.err()
	case NetSlow:
		select {
		case <-time.After(r.Delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		return t.rt.RoundTrip(req)
	}
	resp, err := t.rt.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	switch r.Mode {
	case NetTornBody:
		body = body[:len(body)/2]
	case NetCorruptBody:
		if len(body) > 0 {
			body = bytes.Clone(body)
			body[len(body)/2] ^= 0x5a
		}
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}
