package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

func netFixture(t *testing.T, payload []byte) (*httptest.Server, *RoundTripper, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		w.Write(payload)
	}))
	t.Cleanup(srv.Close)
	rt := NewRoundTripper(nil)
	return srv, rt, &http.Client{Transport: rt}
}

func TestRoundTripperFail(t *testing.T) {
	srv, rt, hc := netFixture(t, []byte("payload"))
	rt.Add(NetRule{Method: http.MethodGet, Mode: NetFail})
	_, err := hc.Get(srv.URL + "/blob")
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("faulted request = %v, want ErrInjected", err)
	}
	if rt.Requests() != 1 {
		t.Errorf("Requests() = %d, want 1", rt.Requests())
	}
	// Other methods are untouched by a method-scoped rule.
	resp, err := hc.Head(srv.URL + "/blob")
	if err != nil {
		t.Fatalf("HEAD through a GET-scoped rule = %v", err)
	}
	resp.Body.Close()
}

func TestRoundTripperSchedule(t *testing.T) {
	srv, rt, hc := netFixture(t, []byte("payload"))
	// Fire on the 2nd and 3rd matching requests only.
	rt.Add(NetRule{Path: "/blob", After: 1, Count: 2, Mode: NetFail})
	get := func() error {
		resp, err := hc.Get(srv.URL + "/blob")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return err
	}
	if err := get(); err != nil {
		t.Fatalf("request 1 (before After) = %v", err)
	}
	for i := 2; i <= 3; i++ {
		if err := get(); err == nil {
			t.Fatalf("request %d survived the scheduled fault", i)
		}
	}
	if err := get(); err != nil {
		t.Fatalf("request 4 (Count exhausted) = %v", err)
	}
	// Reset clears rules and the counter.
	rt.Reset()
	if err := get(); err != nil || rt.Requests() != 1 {
		t.Fatalf("after Reset: err=%v, requests=%d", err, rt.Requests())
	}
}

func TestRoundTripperSlowRespectsContext(t *testing.T) {
	srv, rt, hc := netFixture(t, []byte("payload"))
	rt.Add(NetRule{Mode: NetSlow, Delay: 5 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/blob", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("stalled request succeeded")
	}
	if time.Since(start) > time.Second {
		t.Error("NetSlow ignored the request context")
	}
}

func TestRoundTripperTornBody(t *testing.T) {
	payload := []byte("0123456789abcdef")
	srv, rt, hc := netFixture(t, payload)
	rt.Add(NetRule{Mode: NetTornBody})
	resp, err := hc.Get(srv.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("torn body must read cleanly (the tear hides behind a consistent Content-Length): %v", err)
	}
	if !bytes.Equal(body, payload[:len(payload)/2]) {
		t.Errorf("torn body = %q, want the first half of %q", body, payload)
	}
	if resp.ContentLength != int64(len(body)) {
		t.Errorf("Content-Length %d inconsistent with torn body length %d", resp.ContentLength, len(body))
	}
}

func TestRoundTripperCorruptBody(t *testing.T) {
	payload := []byte("0123456789abcdef")
	srv, rt, hc := netFixture(t, payload)
	rt.Add(NetRule{Mode: NetCorruptBody})
	resp, err := hc.Get(srv.URL + "/blob")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != len(payload) {
		t.Fatalf("corrupt body changed length: %d != %d", len(body), len(payload))
	}
	if bytes.Equal(body, payload) {
		t.Fatal("corrupt-body rule left the payload intact")
	}
	diff := 0
	for i := range body {
		if body[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption flipped %d bytes, want exactly 1", diff)
	}
}

func TestRoundTripperCustomError(t *testing.T) {
	srv, rt, hc := netFixture(t, nil)
	sentinel := errors.New("connection reset by peer")
	rt.Add(NetRule{Mode: NetFail, Err: sentinel})
	_, err := hc.Get(srv.URL + "/blob")
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("faulted request = %v, want the rule's custom error", err)
	}
}
