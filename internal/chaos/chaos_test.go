package chaos

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestInjectorPassThrough(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	path := filepath.Join(dir, "a.txt")
	if err := WriteFileAtomic(in, path, []byte("hello"), 0o644, true); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	data, err := in.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	// The injector counted the traffic even without rules.
	if in.OpCount(OpOpen) == 0 || in.OpCount(OpWrite) == 0 || in.OpCount(OpRename) == 0 {
		t.Errorf("op counters not incremented: open=%d write=%d rename=%d",
			in.OpCount(OpOpen), in.OpCount(OpWrite), in.OpCount(OpRename))
	}
}

func TestRuleScheduling(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	// Fire on the 2nd and 3rd matching write only.
	in.Add(Rule{Op: OpWrite, After: 1, Count: 2})
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	results := make([]error, 4)
	for i := range results {
		_, results[i] = f.Write([]byte("x"))
	}
	for i, want := range []bool{false, true, true, false} {
		if got := results[i] != nil; got != want {
			t.Errorf("write %d: error=%v, want fault=%v", i, results[i], want)
		}
	}
	if !errors.Is(results[1], ErrInjected) {
		t.Errorf("fault error %v does not wrap ErrInjected", results[1])
	}
}

func TestRulePathFilterAndCustomErr(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	sentinel := errors.New("boom")
	in.Add(Rule{Op: OpRead, Path: "target", Err: sentinel})
	hit := filepath.Join(dir, "target.json")
	miss := filepath.Join(dir, "other.json")
	for _, p := range []string{hit, miss} {
		if err := os.WriteFile(p, []byte("ok"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := in.ReadFile(miss); err != nil {
		t.Errorf("non-matching path faulted: %v", err)
	}
	if _, err := in.ReadFile(hit); !errors.Is(err, sentinel) {
		t.Errorf("matching path: err=%v, want %v", err, sentinel)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Rule{Op: OpWrite, Mode: ShortWrite})
	path := filepath.Join(dir, "torn")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, werr := f.Write(payload)
	if werr == nil {
		t.Fatal("short write did not error")
	}
	if n != len(payload)/2 {
		t.Errorf("short write wrote %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	data, _ := os.ReadFile(path)
	if string(data) != "01234" {
		t.Errorf("file holds %q after short write, want first half", data)
	}
}

func TestTornRename(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Add(Rule{Op: OpRename, Mode: TornRename})
	src := filepath.Join(dir, "src")
	dst := filepath.Join(dir, "dst")
	if err := os.WriteFile(src, []byte("0123456789"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := in.Rename(src, dst); err == nil {
		t.Fatal("torn rename did not error")
	}
	if _, err := os.Stat(src); !os.IsNotExist(err) {
		t.Errorf("source survived torn rename: %v", err)
	}
	data, err := os.ReadFile(dst)
	if err != nil {
		t.Fatalf("destination missing after torn rename: %v", err)
	}
	if string(data) != "01234" {
		t.Errorf("destination holds %q, want the torn first half", data)
	}
}

func TestWriteFileAtomicCleansUpOnFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := os.WriteFile(path, []byte("previous"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		rule Rule
	}{
		{"write-fail", Rule{Op: OpWrite}},
		{"sync-fail", Rule{Op: OpSync}},
		{"close-fail", Rule{Op: OpClose}},
		{"rename-fail", Rule{Op: OpRename}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			in := NewInjector(nil)
			in.Add(tc.rule)
			if err := WriteFileAtomic(in, path, []byte("next"), 0o644, true); err == nil {
				t.Fatal("fault did not surface")
			}
			// Previous contents untouched, no temp litter.
			data, _ := os.ReadFile(path)
			if string(data) != "previous" {
				t.Errorf("target holds %q after failed atomic write", data)
			}
			ents, _ := os.ReadDir(dir)
			for _, e := range ents {
				if e.Name() != "out.json" {
					t.Errorf("temp litter left behind: %s", e.Name())
				}
			}
		})
	}
}

func TestWriteFileAtomicSyncOptional(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	path := filepath.Join(dir, "nosync")
	if err := WriteFileAtomic(in, path, []byte("x"), 0o644, false); err != nil {
		t.Fatal(err)
	}
	if in.OpCount(OpSync) != 0 {
		t.Errorf("sync=false still synced %d time(s)", in.OpCount(OpSync))
	}
	if err := WriteFileAtomic(in, path, []byte("y"), 0o644, true); err != nil {
		t.Fatal(err)
	}
	if in.OpCount(OpSync) != 1 {
		t.Errorf("sync=true synced %d time(s), want 1", in.OpCount(OpSync))
	}
}

func TestReset(t *testing.T) {
	in := NewInjector(nil)
	in.Add(Rule{Op: OpStat})
	if _, err := in.Stat("anything"); err == nil {
		t.Fatal("rule did not fire before Reset")
	}
	in.Reset()
	if in.OpCount(OpStat) != 0 {
		t.Errorf("OpCount survived Reset")
	}
	if _, err := in.Stat(filepath.Join(t.TempDir(), "missing")); err == nil || errors.Is(err, ErrInjected) {
		t.Errorf("rule survived Reset: %v", err)
	}
}
