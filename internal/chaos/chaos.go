// Package chaos is the fault-injection seam under the storage tier. The
// journal and the result store perform every filesystem operation through
// the FS interface; production code passes OS (thin wrappers over package
// os), tests pass an Injector that returns I/O errors, tears writes short,
// and corrupts renames on a schedule. Composed with the engine's TaskHook
// (worker panics and stalls), this lets the crash/corruption suites drive
// every failure mode the durability layer claims to survive — without root,
// loop devices, or actual power cuts.
//
// The seam is deliberately narrow: only the operations the durability layer
// performs are in the interface, so a new storage code path that bypasses it
// fails to compile against an Injector-backed test rather than silently
// escaping fault coverage.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the error returned by injected faults that do not name
// their own. Callers must treat it like any other I/O error; tests match it
// to distinguish injected faults from real ones.
var ErrInjected = errors.New("chaos: injected fault")

// File is the writable-handle subset the storage tier uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Chmod(mode os.FileMode) error
	Name() string
}

// FS is the filesystem seam. OS implements it over package os; Injector
// wraps any FS with scheduled faults.
type FS interface {
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	Stat(name string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(name string) ([]os.DirEntry, error)
	Chtimes(name string, atime, mtime time.Time) error
	Truncate(name string, size int64) error
}

// OS is the production FS: direct delegation to package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}
func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// Op names one FS operation for rule matching and counting.
type Op string

// Operations the injector can target.
const (
	OpOpen    Op = "open" // OpenFile and CreateTemp
	OpWrite   Op = "write"
	OpSync    Op = "sync"
	OpClose   Op = "close"
	OpRename  Op = "rename"
	OpRemove  Op = "remove"
	OpRead    Op = "read"
	OpStat    Op = "stat"
	OpMkdir   Op = "mkdir"
	OpReadDir Op = "readdir"
	OpChtimes Op = "chtimes"
	OpTrunc   Op = "truncate"
)

// Mode selects how a matched rule corrupts the operation.
type Mode int

// Fault modes.
const (
	// Fail returns the rule's error without performing the operation.
	Fail Mode = iota
	// ShortWrite performs only the first half of a write, then errors —
	// the torn append a crash mid-write leaves in a non-atomic file.
	ShortWrite
	// TornRename leaves the destination holding a truncated copy of the
	// source and errors — the state a crash inside a non-atomic replace
	// (or a buggy filesystem) can expose to the next reader.
	TornRename
)

// Rule schedules one fault: the Nth-and-later matching calls of Op on paths
// containing Path fire Mode, Count times (0 = every matching call forever).
type Rule struct {
	Op   Op
	Path string // substring match on the operation's path; "" matches all
	// After is how many matching calls pass through before the rule fires.
	After int
	// Count bounds how many times the rule fires; 0 means no bound.
	Count int
	Mode  Mode
	// Err overrides ErrInjected as the returned error.
	Err error
}

type ruleState struct {
	Rule
	seen  int
	fired int
}

// Injector wraps an FS with scheduled faults. It is safe for concurrent use
// and counts every operation it sees, fault or not, so tests can assert the
// code under test actually exercised the seam.
type Injector struct {
	fs    FS
	mu    sync.Mutex
	rules []*ruleState
	ops   map[Op]int
}

// NewInjector wraps fs (nil means OS) with an empty schedule.
func NewInjector(fs FS) *Injector {
	if fs == nil {
		fs = OS
	}
	return &Injector{fs: fs, ops: make(map[Op]int)}
}

// Add appends a rule to the schedule.
func (in *Injector) Add(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{Rule: r})
}

// Reset clears the schedule and the operation counters.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
	in.ops = make(map[Op]int)
}

// OpCount reports how many times op went through the injector.
func (in *Injector) OpCount(op Op) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops[op]
}

// match records one call of op on path and returns the rule that fires on
// it, if any.
func (in *Injector) match(op Op, path string) *ruleState {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.ops[op]++
	for _, r := range in.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		return r
	}
	return nil
}

func (r *ruleState) err() error {
	if r.Err != nil {
		return r.Err
	}
	return fmt.Errorf("%w (%s %s)", ErrInjected, r.Op, r.Mode.String())
}

// String names the mode for error messages.
func (m Mode) String() string {
	switch m {
	case ShortWrite:
		return "short-write"
	case TornRename:
		return "torn-rename"
	default:
		return "fail"
	}
}

func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if r := in.match(OpOpen, name); r != nil {
		return nil, r.err()
	}
	f, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.match(OpOpen, filepath.Join(dir, pattern)); r != nil {
		return nil, r.err()
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{f: f, in: in}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.match(OpRename, newpath); r != nil {
		if r.Mode == TornRename {
			// Leave the destination torn: the first half of the source's
			// bytes, source removed — what a reader may observe after a
			// crash inside a non-atomic replace.
			if data, err := in.fs.ReadFile(oldpath); err == nil {
				torn := data[:len(data)/2]
				if f, err := in.fs.OpenFile(newpath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644); err == nil {
					_, _ = f.Write(torn)
					_ = f.Close()
				}
				_ = in.fs.Remove(oldpath)
			}
		}
		return r.err()
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if r := in.match(OpRemove, name); r != nil {
		return r.err()
	}
	return in.fs.Remove(name)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	if r := in.match(OpRead, name); r != nil {
		return nil, r.err()
	}
	return in.fs.ReadFile(name)
}

func (in *Injector) Stat(name string) (os.FileInfo, error) {
	if r := in.match(OpStat, name); r != nil {
		return nil, r.err()
	}
	return in.fs.Stat(name)
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if r := in.match(OpMkdir, path); r != nil {
		return r.err()
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if r := in.match(OpReadDir, name); r != nil {
		return nil, r.err()
	}
	return in.fs.ReadDir(name)
}

func (in *Injector) Chtimes(name string, atime, mtime time.Time) error {
	if r := in.match(OpChtimes, name); r != nil {
		return r.err()
	}
	return in.fs.Chtimes(name, atime, mtime)
}

func (in *Injector) Truncate(name string, size int64) error {
	if r := in.match(OpTrunc, name); r != nil {
		return r.err()
	}
	return in.fs.Truncate(name, size)
}

// injFile threads writes, syncs and closes back through the injector's
// schedule, keyed by the file's name.
type injFile struct {
	f  File
	in *Injector
}

func (f *injFile) Write(p []byte) (int, error) {
	if r := f.in.match(OpWrite, f.f.Name()); r != nil {
		if r.Mode == ShortWrite && len(p) > 1 {
			n, err := f.f.Write(p[:len(p)/2])
			if err != nil {
				return n, err
			}
			return n, r.err()
		}
		return 0, r.err()
	}
	return f.f.Write(p)
}

func (f *injFile) Sync() error {
	if r := f.in.match(OpSync, f.f.Name()); r != nil {
		return r.err()
	}
	return f.f.Sync()
}

func (f *injFile) Close() error {
	if r := f.in.match(OpClose, f.f.Name()); r != nil {
		_ = f.f.Close() // the handle still goes away, as a crashed close would
		return r.err()
	}
	return f.f.Close()
}

func (f *injFile) Chmod(mode os.FileMode) error { return f.f.Chmod(mode) }
func (f *injFile) Name() string                 { return f.f.Name() }

// WriteFileAtomic is internal/atomicfile's temp-write-rename through the FS
// seam: data lands in a temp file in path's directory, is optionally synced,
// and is renamed over path. On any error the temp file is removed and the
// previous contents of path are untouched (fault injection aside — a
// TornRename rule deliberately violates that guarantee to test readers).
func WriteFileAtomic(fsys FS, path string, data []byte, perm os.FileMode, sync bool) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := fsys.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if err != nil {
			_ = tmp.Close()
			_ = fsys.Remove(tmpName)
		}
	}()
	if _, err = tmp.Write(data); err != nil {
		return err
	}
	if err = tmp.Chmod(perm); err != nil {
		return err
	}
	if sync {
		if err = tmp.Sync(); err != nil {
			return err
		}
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	return fsys.Rename(tmpName, path)
}
