package corrector

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/taint"
)

// Correction describes one applied fix.
type Correction struct {
	FixID string
	// Line is the sink line the fix was inserted at.
	Line int
	// Before and After are the rewritten source fragment.
	Before string
	After  string
}

// Corrector rewrites source files, wrapping tainted sink arguments in fix
// calls and appending the fix definitions (the code fixing sub-module of
// Section III-C).
type Corrector struct {
	fixes map[string]*Fix
}

// New returns a corrector using the built-in fix library.
func New() *Corrector {
	return &Corrector{fixes: Library()}
}

// Register adds or replaces a fix (used when weapons supply new fixes).
func (c *Corrector) Register(f *Fix) {
	if c.fixes == nil {
		c.fixes = make(map[string]*Fix)
	}
	c.fixes[f.ID] = f
}

// Fix returns a fix by ID, or nil.
func (c *Corrector) Fix(id string) *Fix { return c.fixes[id] }

// edit is a pending text replacement within a file.
type edit struct {
	start, end int // byte offsets
	text       string
}

// Apply rewrites src, fixing each candidate with the fix registered for
// fixID(candidate). It returns the corrected source and the list of applied
// corrections. Candidates whose positions cannot be resolved are skipped
// with an error entry.
func (c *Corrector) Apply(src string, cands []*taint.Candidate, fixID func(*taint.Candidate) string) (string, []Correction, error) {
	var edits []edit
	var corrections []Correction
	needed := make(map[string]*Fix)

	for _, cand := range cands {
		id := fixID(cand)
		fx := c.fixes[id]
		if fx == nil {
			return "", nil, fmt.Errorf("corrector: no fix registered for %q", id)
		}
		if cand.TaintedExpr == nil {
			continue
		}
		start := cand.TaintedExpr.Pos().Offset
		end := cand.TaintedExpr.End().Offset
		if start < 0 || end > len(src) || start >= end {
			continue
		}
		argText := src[start:end]
		if strings.HasPrefix(argText, fx.ID+"(") {
			continue // already fixed
		}
		wrapped := fx.ID + "(" + argText + ")"
		edits = append(edits, edit{start: start, end: end, text: wrapped})
		needed[fx.ID] = fx
		corrections = append(corrections, Correction{
			FixID:  fx.ID,
			Line:   cand.SinkPos.Line,
			Before: argText,
			After:  wrapped,
		})
	}
	if len(edits) == 0 {
		return src, nil, nil
	}

	out, err := applyEdits(src, edits)
	if err != nil {
		return "", nil, err
	}

	// Append the fix definitions once per file, guarded so repeated fixing
	// stays idempotent.
	var defs []string
	for id := range needed {
		defs = append(defs, id)
	}
	sort.Strings(defs)
	var b strings.Builder
	b.WriteString(out)
	// If the file ends inside a PHP region the definitions are appended as
	// plain code; otherwise a fresh <?php block is opened.
	openTag, closeTag := "\n", "\n"
	if !endsInPHP(src) {
		openTag, closeTag = "\n<?php\n", "\n?>\n"
	}
	for _, id := range defs {
		if strings.Contains(src, "function "+id+"(") {
			continue
		}
		b.WriteString(openTag)
		b.WriteString("// --- WAP fix (auto-inserted) ---\nif (!function_exists('")
		b.WriteString(id)
		b.WriteString("')) {\n")
		b.WriteString(needed[id].Def)
		b.WriteString("\n}")
		b.WriteString(closeTag)
	}
	return b.String(), corrections, nil
}

// endsInPHP reports whether the source's final bytes are inside a PHP
// region (open tag without a matching close tag after it).
func endsInPHP(src string) bool {
	lastOpen := strings.LastIndex(src, "<?")
	if lastOpen < 0 {
		return false
	}
	lastClose := strings.LastIndex(src, "?>")
	return lastClose < lastOpen
}

// applyEdits performs non-overlapping replacements right-to-left. Nested
// edits (an argument inside an already-wrapped argument) are dropped in
// favour of the outermost edit.
func applyEdits(src string, edits []edit) (string, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end > edits[j].end
	})
	// Drop contained or duplicate edits.
	kept := edits[:0]
	lastEnd := -1
	for _, e := range edits {
		if e.start < lastEnd {
			continue
		}
		kept = append(kept, e)
		lastEnd = e.end
	}
	var b strings.Builder
	b.Grow(len(src) + len(kept)*16)
	prev := 0
	for _, e := range kept {
		if e.start < prev || e.end > len(src) {
			return "", fmt.Errorf("corrector: edit out of bounds [%d,%d)", e.start, e.end)
		}
		b.WriteString(src[prev:e.start])
		b.WriteString(e.text)
		prev = e.end
	}
	b.WriteString(src[prev:])
	return b.String(), nil
}
