package corrector

import (
	"strings"
	"testing"

	"repro/internal/php/parser"
	"repro/internal/taint"
	"repro/internal/vuln"
)

func TestGeneratePHPSanitizationFix(t *testing.T) {
	f, err := GenerateFix("san_x", Template{Kind: PHPSanitization, SanFunc: "htmlentities"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Def, "function san_x($v)") || !strings.Contains(f.Def, "htmlentities($v)") {
		t.Errorf("def = %s", f.Def)
	}
}

func TestGenerateUserSanitizationFix(t *testing.T) {
	f, err := GenerateFix("san_hei", Template{
		Kind:           UserSanitization,
		MaliciousChars: []string{"\r", "\n"},
		Neutralizer:    " ",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Def, "str_replace") || !strings.Contains(f.Def, `"\r"`) {
		t.Errorf("def = %s", f.Def)
	}
}

func TestGenerateUserValidationFix(t *testing.T) {
	f, err := GenerateFix("san_v", Template{
		Kind:           UserValidation,
		MaliciousChars: []string{"*", "("},
		Message:        "blocked",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f.Def, "strpos") || !strings.Contains(f.Def, "'blocked'") {
		t.Errorf("def = %s", f.Def)
	}
}

func TestGenerateFixErrors(t *testing.T) {
	if _, err := GenerateFix("", Template{Kind: PHPSanitization, SanFunc: "f"}); err == nil {
		t.Error("want error for empty id")
	}
	if _, err := GenerateFix("x", Template{Kind: PHPSanitization}); err == nil {
		t.Error("want error for missing san func")
	}
	if _, err := GenerateFix("x", Template{Kind: UserSanitization}); err == nil {
		t.Error("want error for missing chars")
	}
	if _, err := GenerateFix("x", Template{Kind: UserValidation}); err == nil {
		t.Error("want error for missing chars")
	}
	if _, err := GenerateFix("x", Template{}); err == nil {
		t.Error("want error for unknown kind")
	}
}

func TestLibraryComplete(t *testing.T) {
	lib := Library()
	// Every class's FixID must be present.
	for _, c := range vuln.All() {
		if lib[c.FixID] == nil {
			t.Errorf("class %s fix %q missing from library", c.ID, c.FixID)
		}
	}
}

func candidatesFor(t *testing.T, id vuln.ClassID, src string) []*taint.Candidate {
	t.Helper()
	f, errs := parser.Parse("fix.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	return taint.New(taint.Config{Class: vuln.MustGet(id)}).File(f)
}

func TestApplySQLIFix(t *testing.T) {
	src := `<?php
$id = $_GET['id'];
$q = "SELECT * FROM t WHERE id=" . $id;
mysql_query($q);
`
	cands := candidatesFor(t, vuln.SQLI, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	c := New()
	out, corr, err := c.Apply(src, cands, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 1 {
		t.Fatalf("corrections = %d", len(corr))
	}
	if !strings.Contains(out, "mysql_query(san_sqli($q))") {
		t.Errorf("sink not wrapped:\n%s", out)
	}
	if !strings.Contains(out, "function san_sqli($v)") {
		t.Errorf("fix definition not appended:\n%s", out)
	}
	// The rewritten file must still parse.
	if _, errs := parser.Parse("fixed.php", out); len(errs) > 0 {
		t.Errorf("fixed source does not parse: %v", errs)
	}
}

func TestApplyIdempotent(t *testing.T) {
	src := `<?php
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);
`
	cands := candidatesFor(t, vuln.SQLI, src)
	c := New()
	out1, _, err := c.Apply(src, cands, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	// Re-analyze and re-fix the corrected file: the sanitized flow yields no
	// candidates, so nothing changes.
	cands2 := candidatesFor(t, vuln.SQLI, out1)
	out2, corr2, err := c.Apply(out1, cands2, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	if len(corr2) != 0 || out2 != out1 {
		t.Errorf("fixing is not idempotent: %d new corrections", len(corr2))
	}
}

func TestApplyFixActuallyRemovesVulnerability(t *testing.T) {
	// After fixing, the taint analyzer must no longer flag the flow: the
	// fix function wraps the tainted argument and WAP recognizes san_sqli
	// via the fix library semantics (mysql_real_escape_string inside).
	src := `<?php
mysql_query("SELECT * FROM t WHERE name='" . $_POST['n'] . "'");
`
	cands := candidatesFor(t, vuln.SQLI, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	c := New()
	out, _, err := c.Apply(src, cands, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	after := candidatesFor(t, vuln.SQLI, out)
	if len(after) != 0 {
		t.Errorf("vulnerability survives fixing: %v", after[0])
	}
}

func TestApplyMultipleCandidatesOneFile(t *testing.T) {
	src := `<?php
mysql_query("SELECT a FROM t WHERE x=" . $_GET['x']);
mysql_query("SELECT b FROM t WHERE y=" . $_GET['y']);
`
	cands := candidatesFor(t, vuln.SQLI, src)
	if len(cands) != 2 {
		t.Fatalf("candidates = %d", len(cands))
	}
	out, corr, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	if len(corr) != 2 {
		t.Fatalf("corrections = %d", len(corr))
	}
	if strings.Count(out, "san_sqli(") < 2 {
		t.Errorf("both sinks should be wrapped:\n%s", out)
	}
	if strings.Count(out, "function san_sqli($v)") != 1 {
		t.Errorf("fix definition should appear exactly once")
	}
}

func TestApplyUnknownFix(t *testing.T) {
	src := `<?php mysql_query("SELECT " . $_GET['x']);`
	cands := candidatesFor(t, vuln.SQLI, src)
	if _, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "no_such_fix" }); err == nil {
		t.Error("want error for unknown fix")
	}
}

func TestApplyEchoXSSFix(t *testing.T) {
	src := `<?php
echo "Hello " . $_GET['name'];
`
	cands := candidatesFor(t, vuln.XSSR, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_out" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `echo san_out("Hello " . $_GET['name'])`) {
		t.Errorf("echo arg not wrapped:\n%s", out)
	}
	after := candidatesFor(t, vuln.XSSR, out)
	if len(after) != 0 {
		t.Errorf("XSS survives fixing")
	}
}

func TestRegisterWeaponFix(t *testing.T) {
	c := New()
	f, err := GenerateFix("san_custom", Template{Kind: PHPSanitization, SanFunc: "my_escape"})
	if err != nil {
		t.Fatal(err)
	}
	c.Register(f)
	if c.Fix("san_custom") == nil {
		t.Error("registered fix not found")
	}
}

func TestPHPQuoteControlChars(t *testing.T) {
	got := phpQuote("\r\n")
	if got != `"\r\n"` {
		t.Errorf("quote = %s", got)
	}
	got = phpQuote("it's")
	if got != `'it\'s'` {
		t.Errorf("quote = %s", got)
	}
}

func TestNestedEditsOutermostWins(t *testing.T) {
	src := `<?php
mysql_query("SELECT * FROM t WHERE a='" . $_GET['a'] . "' AND b='" . $_GET['b'] . "'");
`
	// One candidate whose tainted expr is the whole concatenation; apply
	// twice with overlapping positions must not corrupt.
	cands := candidatesFor(t, vuln.SQLI, src)
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_sqli" })
	if err != nil {
		t.Fatal(err)
	}
	if _, errs := parser.Parse("n.php", out); len(errs) > 0 {
		t.Errorf("output does not parse: %v\n%s", errs, out)
	}
}
