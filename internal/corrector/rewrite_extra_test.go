package corrector

import (
	"strings"
	"testing"

	"repro/internal/php/parser"
	"repro/internal/taint"
	"repro/internal/vuln"
)

// Additional correction scenarios across fix templates and classes.

func TestUserValidationFixApplied(t *testing.T) {
	src := `<?php
$user = $_GET['user'];
ldap_search($conn, "dc=acme", "(uid=" . $user . ")");
`
	cands := candidatesFor(t, vuln.LDAPI, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_ldapi" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ldap_search($conn, \"dc=acme\", san_ldapi(") {
		t.Errorf("validation fix not wrapped:\n%s", out)
	}
	if !strings.Contains(out, "strpos($v, $c)") {
		t.Errorf("validation fix body missing:\n%s", out)
	}
	if _, errs := parser.Parse("fixed.php", out); len(errs) > 0 {
		t.Errorf("fixed source does not parse: %v", errs)
	}
}

func TestSessionFixationFix(t *testing.T) {
	src := `<?php
session_id($_GET['sid']);
`
	cands := candidatesFor(t, vuln.SF, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_sf" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "session_id(san_sf(") {
		t.Errorf("SF fix missing:\n%s", out)
	}
	if !strings.Contains(out, "session_regenerate_id") {
		t.Errorf("SF fix body missing:\n%s", out)
	}
}

func TestHeaderInjectionUserSanitizationFix(t *testing.T) {
	src := `<?php
header("Location: " . $_GET['next']);
`
	cands := candidatesFor(t, vuln.HI, src)
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_hei" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `header(san_hei(`) {
		t.Errorf("HI fix missing:\n%s", out)
	}
	if !strings.Contains(out, `"\r"`) || !strings.Contains(out, "str_replace") {
		t.Errorf("HI fix body missing CR/LF neutralization:\n%s", out)
	}
}

func TestFixInsideHTMLTemplate(t *testing.T) {
	// Sink inside an inline-PHP region of an HTML page; definitions must
	// open a new <?php block because the file ends in HTML mode.
	src := `<html><body>
<?php echo "Hi " . $_GET['name']; ?>
</body></html>
`
	cands := candidatesFor(t, vuln.XSSR, src)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	out, _, err := New().Apply(src, cands, func(*taint.Candidate) string { return "san_out" })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "echo san_out(") {
		t.Errorf("echo not wrapped:\n%s", out)
	}
	if !strings.Contains(out, "\n<?php\n// --- WAP fix") {
		t.Errorf("definitions must open a PHP block:\n%s", out)
	}
	if _, errs := parser.Parse("page.php", out); len(errs) > 0 {
		t.Errorf("fixed page does not parse: %v\n%s", errs, out)
	}
}

func TestMixedClassesDifferentFixesOneFile(t *testing.T) {
	src := `<?php
mysql_query("SELECT a FROM t WHERE id=" . $_GET['id']);
system("ls " . $_POST['dir']);
`
	sqli := candidatesFor(t, vuln.SQLI, src)
	osci := candidatesFor(t, vuln.OSCI, src)
	all := append(sqli, osci...)
	out, corrs, err := New().Apply(src, all, func(c *taint.Candidate) string {
		return vuln.MustGet(c.Class).FixID
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(corrs) != 2 {
		t.Fatalf("corrections = %d", len(corrs))
	}
	if !strings.Contains(out, "san_sqli(") || !strings.Contains(out, "san_osci(") {
		t.Errorf("both fixes expected:\n%s", out)
	}
	if strings.Count(out, "function san_sqli") != 1 || strings.Count(out, "function san_osci") != 1 {
		t.Errorf("each definition exactly once:\n%s", out)
	}
}

func TestApplyNoCandidatesNoChange(t *testing.T) {
	src := `<?php echo "static";`
	out, corrs, err := New().Apply(src, nil, func(*taint.Candidate) string { return "san_out" })
	if err != nil {
		t.Fatal(err)
	}
	if out != src || len(corrs) != 0 {
		t.Error("no-op apply must not modify the source")
	}
}

func TestFixTemplateKindStrings(t *testing.T) {
	if PHPSanitization.String() != "PHP sanitization function" {
		t.Errorf("kind = %q", PHPSanitization.String())
	}
	if UserSanitization.String() != "user sanitization" || UserValidation.String() != "user validation" {
		t.Error("kind names wrong")
	}
	if TemplateKind(99).String() == "" {
		t.Error("unknown kind must render")
	}
}
