// Package corrector implements WAP's code corrector: the library of fixes,
// the three fix templates of the paper (PHP sanitization function, user
// sanitization, user validation), and source rewriting that inserts fixes at
// the line of the sensitive sink.
package corrector

import (
	"fmt"
	"strings"
)

// TemplateKind selects one of the paper's fix templates (Section III-C).
type TemplateKind int

// Fix template kinds.
const (
	// PHPSanitization wraps the tainted data in a given PHP sanitization
	// function (used when the user specifies the sanitization function and
	// associated sink).
	PHPSanitization TemplateKind = iota + 1
	// UserSanitization neutralizes user-specified malicious characters with
	// a user-specified neutralizer character.
	UserSanitization
	// UserValidation only checks for malicious characters and issues a
	// message on a match.
	UserValidation
)

// String returns the template's paper name.
func (k TemplateKind) String() string {
	switch k {
	case PHPSanitization:
		return "PHP sanitization function"
	case UserSanitization:
		return "user sanitization"
	case UserValidation:
		return "user validation"
	default:
		return fmt.Sprintf("TemplateKind(%d)", int(k))
	}
}

// Template is the user-provided data a fix template is instantiated with.
type Template struct {
	Kind TemplateKind
	// SanFunc is the PHP sanitization function for PHPSanitization.
	SanFunc string
	// MaliciousChars are the characters an attacker needs (UserSanitization
	// and UserValidation).
	MaliciousChars []string
	// Neutralizer replaces malicious characters (UserSanitization); a space
	// when empty.
	Neutralizer string
	// Message is echoed on validation failure (UserValidation).
	Message string
}

// Fix is a generated, insertable fix: a PHP function plus the knowledge of
// how to apply it at a sink.
type Fix struct {
	// ID is the fix function name, e.g. "san_sqli" or "san_nosqli".
	ID string
	// Def is the PHP source of the fix function definition.
	Def string
	// Kind records which template generated the fix.
	Kind TemplateKind
}

// GenerateFix instantiates a fix template (the paper's automatic fix
// creation for weapons).
func GenerateFix(id string, t Template) (*Fix, error) {
	if id == "" {
		return nil, fmt.Errorf("corrector: fix needs an id")
	}
	switch t.Kind {
	case PHPSanitization:
		if t.SanFunc == "" {
			return nil, fmt.Errorf("corrector: PHP sanitization template needs a sanitization function")
		}
		def := fmt.Sprintf(`function %s($v) {
    // WAP: sanitize with the configured PHP function.
    return %s($v);
}`, id, t.SanFunc)
		return &Fix{ID: id, Def: def, Kind: t.Kind}, nil
	case UserSanitization:
		if len(t.MaliciousChars) == 0 {
			return nil, fmt.Errorf("corrector: user sanitization template needs malicious characters")
		}
		neutral := t.Neutralizer
		if neutral == "" {
			neutral = " "
		}
		def := fmt.Sprintf(`function %s($v) {
    // WAP: neutralize malicious characters.
    return str_replace(array(%s), %s, $v);
}`, id, phpCharArray(t.MaliciousChars), phpQuote(neutral))
		return &Fix{ID: id, Def: def, Kind: t.Kind}, nil
	case UserValidation:
		if len(t.MaliciousChars) == 0 {
			return nil, fmt.Errorf("corrector: user validation template needs malicious characters")
		}
		msg := t.Message
		if msg == "" {
			msg = "WAP: malicious input blocked"
		}
		def := fmt.Sprintf(`function %s($v) {
    // WAP: validate against malicious characters.
    foreach (array(%s) as $c) {
        if (strpos($v, $c) !== false) {
            echo %s;
            return '';
        }
    }
    return $v;
}`, id, phpCharArray(t.MaliciousChars), phpQuote(msg))
		return &Fix{ID: id, Def: def, Kind: t.Kind}, nil
	default:
		return nil, fmt.Errorf("corrector: unknown template kind %d", int(t.Kind))
	}
}

func phpCharArray(chars []string) string {
	quoted := make([]string, len(chars))
	for i, c := range chars {
		quoted[i] = phpQuote(c)
	}
	return strings.Join(quoted, ", ")
}

// phpQuote renders a single-quoted PHP string literal with escapes.
func phpQuote(s string) string {
	// Characters like \n and \r must use double quotes to be meaningful.
	if strings.ContainsAny(s, "\n\r\t\x00") {
		r := strings.NewReplacer("\\", "\\\\", "\"", "\\\"", "\n", "\\n", "\r", "\\r", "\t", "\\t", "\x00", "\\0", "$", "\\$")
		return "\"" + r.Replace(s) + "\""
	}
	r := strings.NewReplacer("\\", "\\\\", "'", "\\'")
	return "'" + r.Replace(s) + "'"
}

// Library returns the built-in fix catalog of the tool: the fixes WAP ships
// for its native classes plus the fixes the paper generates for the new
// ones.
func Library() map[string]*Fix {
	mk := func(id string, t Template) *Fix {
		f, err := GenerateFix(id, t)
		if err != nil {
			panic(fmt.Sprintf("corrector: built-in fix %s: %v", id, err))
		}
		return f
	}
	lib := map[string]*Fix{
		"san_sqli": mk("san_sqli", Template{Kind: PHPSanitization, SanFunc: "mysql_real_escape_string"}),
		"san_out":  mk("san_out", Template{Kind: PHPSanitization, SanFunc: "htmlentities"}),
		"san_osci": mk("san_osci", Template{Kind: PHPSanitization, SanFunc: "escapeshellarg"}),
		"san_mix": mk("san_mix", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"../", "..\\", "http://", "https://", "ftp://", "php://", "\x00"},
			Message:        "WAP: invalid path",
		}),
		"san_phpci": mk("san_phpci", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"$", ";", "(", ")", "`"},
			Message:        "WAP: dynamic code blocked",
		}),
		// Fixes created for the new classes (Section IV-B):
		"san_ldapi": mk("san_ldapi", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"*", "(", ")", "\\", "\x00"},
			Message:        "WAP: invalid LDAP filter characters",
		}),
		"san_xpathi": mk("san_xpathi", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"'", "\"", "[", "]", "(", ")", "="},
			Message:        "WAP: invalid XPath characters",
		}),
		// san_read / san_write validate content against scripts and, after
		// the paper's change for CS, also against URIs/hyperlinks.
		"san_read": mk("san_read", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"<script", "javascript:", "http://", "https://", "www."},
			Message:        "WAP: content blocked (script or hyperlink)",
		}),
		"san_write": mk("san_write", Template{
			Kind:           UserValidation,
			MaliciousChars: []string{"<script", "javascript:", "http://", "https://", "www."},
			Message:        "WAP: content blocked (script or hyperlink)",
		}),
		// Weapon fixes (Section IV-C):
		"san_nosqli": mk("san_nosqli", Template{Kind: PHPSanitization, SanFunc: "mysql_real_escape_string"}),
		"san_hei": mk("san_hei", Template{
			Kind:           UserSanitization,
			MaliciousChars: []string{"\r", "\n", "%0a", "%0d", "%0A", "%0D"},
			Neutralizer:    " ",
		}),
		"san_wpsqli": mk("san_wpsqli", Template{Kind: PHPSanitization, SanFunc: "esc_sql"}),
	}
	// Session fixation has no sanitizable characters; its fix regenerates
	// the session id instead of trusting user tokens (created from scratch,
	// as the paper notes).
	lib["san_sf"] = &Fix{
		ID:   "san_sf",
		Kind: UserValidation,
		Def: `function san_sf($v) {
    // WAP: never adopt a user-supplied session token.
    if (session_status() === PHP_SESSION_ACTIVE) {
        session_regenerate_id(true);
    }
    return session_id();
}`,
	}
	return lib
}
