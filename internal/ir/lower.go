package ir

import (
	"sort"
	"strings"

	"repro/internal/php/ast"
	"repro/internal/php/token"
)

// LowerFile lowers a parsed file: the top-level statement stream and every
// registered function declaration, in the same source order the taint
// engine's uncalled-function pass uses. The result is immutable.
func LowerFile(f *ast.File) *File {
	lw := &lowerer{funcSet: make(map[*ast.FunctionDecl]bool)}
	decls := sortedDecls(f)
	for _, d := range decls {
		lw.funcSet[d] = true
	}
	out := &File{Name: f.Name, ByDecl: make(map[*ast.FunctionDecl]*Func, len(decls))}
	// The *ast.File node itself.
	lw.visited++
	out.Top = lw.lowerTop(f)
	for _, d := range decls {
		fn := lw.lowerDecl(d)
		out.Funcs = append(out.Funcs, fn)
		out.ByDecl[d] = fn
	}
	out.Visited = lw.visited
	out.Skipped = lw.skipped
	out.Notes = lw.notes
	for _, fn := range lw.allFuncs {
		out.NumFuncs++
		out.NumBlocks += len(fn.Blocks)
		out.NumInstrs += fn.NumInstrs()
	}
	return out
}

// LowerFunc lowers a single declaration standalone — the cross-file path
// where a resolver hands the engine a declaration from a file whose lowered
// form is not at hand.
func LowerFunc(d *ast.FunctionDecl) *Func {
	lw := &lowerer{funcSet: map[*ast.FunctionDecl]bool{d: true}}
	return lw.lowerDecl(d)
}

// sortedDecls returns the file's registered declarations in source-position
// order, deduplicated by identity — the exact order (and comparator) of the
// taint engine's uncalled pass.
func sortedDecls(f *ast.File) []*ast.FunctionDecl {
	fns := make([]*ast.FunctionDecl, 0, len(f.Funcs))
	seen := make(map[*ast.FunctionDecl]bool, len(f.Funcs))
	for _, fn := range f.Funcs {
		if !seen[fn] {
			seen[fn] = true
			fns = append(fns, fn)
		}
	}
	sort.Slice(fns, func(i, j int) bool {
		a, b := fns[i], fns[j]
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Name < b.Name
	})
	return fns
}

// lowerer carries the per-file lowering state.
type lowerer struct {
	funcSet  map[*ast.FunctionDecl]bool
	allFuncs []*Func
	visited  int
	skipped  int
	notes    []Degraded
	// noCount suppresses accounting while a subtree is deliberately lowered
	// a second time (the walker evaluates a short ternary's condition twice;
	// the nodes must still be counted once).
	noCount int

	fn  *Func
	cur *Block
}

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

func (lw *lowerer) count(n ast.Node) {
	if n != nil && lw.noCount == 0 {
		lw.visited++
	}
}

// skip accounts a whole subtree as deliberately not lowered.
func (lw *lowerer) skip(n ast.Node, reason string) {
	if n == nil || lw.noCount > 0 {
		return
	}
	cnt := countNodes(n)
	lw.skipped += cnt
	lw.notes = append(lw.notes, Degraded{Reason: reason, Pos: n.Pos(), Nodes: cnt})
}

// skipRest accounts the children of an already-counted node.
func (lw *lowerer) skipRest(n ast.Node, reason string) {
	if n == nil || lw.noCount > 0 {
		return
	}
	cnt := countNodes(n) - 1
	if cnt <= 0 {
		return
	}
	lw.skipped += cnt
	lw.notes = append(lw.notes, Degraded{Reason: reason, Pos: n.Pos(), Nodes: cnt})
}

func countNodes(n ast.Node) int {
	total := 0
	ast.Inspect(n, func(ast.Node) bool { total++; return true })
	return total
}

// ---------------------------------------------------------------------------
// Registers, blocks, regions
// ---------------------------------------------------------------------------

func (lw *lowerer) newReg() Reg {
	r := Reg(lw.fn.NumRegs)
	lw.fn.NumRegs++
	return r
}

func (lw *lowerer) newBlock() *Block {
	b := &Block{ID: len(lw.fn.Blocks), Result: NoReg}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) block() *Block {
	if lw.cur == nil {
		lw.cur = lw.newBlock()
	}
	return lw.cur
}

func (lw *lowerer) emit(ins Instr) {
	b := lw.block()
	b.Instrs = append(b.Instrs, ins)
}

// emit1 emits a value-producing instruction into a fresh register.
func (lw *lowerer) emit1(ins Instr) Reg {
	ins.Dst = lw.newReg()
	lw.emit(ins)
	return ins.Dst
}

// inBlock lowers an expression into a fresh detached block (an instruction
// operand or a switch-case condition) and records its value register.
func (lw *lowerer) inBlock(f func() Reg) *Block {
	saved := lw.cur
	b := lw.newBlock()
	lw.cur = b
	b.Result = f()
	lw.cur = saved
	return b
}

// closeInto flushes the open straight-line block into seq.
func (lw *lowerer) closeInto(seq *Region) {
	if lw.cur != nil {
		seq.Kids = append(seq.Kids, &Region{Kind: RBasic, Blk: lw.cur})
		lw.cur = nil
	}
}

func (lw *lowerer) lowerStmts(list []ast.Stmt) *Region {
	saved := lw.cur
	lw.cur = nil
	seq := &Region{Kind: RSeq}
	for _, s := range list {
		lw.lowerStmt(seq, s)
	}
	lw.closeInto(seq)
	lw.cur = saved
	return seq
}

// lowerStmtRegion lowers one statement into its own region (else arms).
func (lw *lowerer) lowerStmtRegion(s ast.Stmt) *Region {
	saved := lw.cur
	lw.cur = nil
	seq := &Region{Kind: RSeq}
	lw.lowerStmt(seq, s)
	lw.closeInto(seq)
	lw.cur = saved
	return seq
}

// lowerBlock lowers a braced statement block, accounting the block node.
func (lw *lowerer) lowerBlock(b *ast.BlockStmt) *Region {
	if b == nil {
		return &Region{Kind: RSeq}
	}
	lw.count(b)
	return lw.lowerStmts(b.Stmts)
}

// ---------------------------------------------------------------------------
// Functions
// ---------------------------------------------------------------------------

func (lw *lowerer) beginFunc(name string, decl *ast.FunctionDecl, pos token.Position) func() {
	savedFn, savedCur := lw.fn, lw.cur
	// Register 0 is the always-clean register: literals and other
	// clean-producing expressions share it, so they cost no instruction.
	lw.fn = &Func{Name: name, Decl: decl, NumRegs: 1, Pos: pos}
	lw.cur = nil
	lw.allFuncs = append(lw.allFuncs, lw.fn)
	return func() { lw.fn, lw.cur = savedFn, savedCur }
}

func (lw *lowerer) lowerTop(f *ast.File) *Func {
	restore := lw.beginFunc("", nil, token.Position{File: f.Name, Line: 1, Column: 1})
	fn := lw.fn
	fn.Body = lw.lowerStmts(f.Stmts)
	restore()
	wire(fn)
	return fn
}

func (lw *lowerer) lowerDecl(d *ast.FunctionDecl) *Func {
	restore := lw.beginFunc(d.Name, d, d.Position)
	fn := lw.fn
	lw.count(d)
	for _, p := range d.Params {
		prm := Param{Name: p.Name, ByRef: p.ByRef}
		if p.Default != nil {
			def := p.Default
			prm.Default = lw.inBlock(func() Reg { return lw.lowerExpr(def) })
		}
		fn.Params = append(fn.Params, prm)
	}
	if d.Body != nil {
		fn.Body = lw.lowerBlock(d.Body)
	} else {
		fn.Body = &Region{Kind: RSeq}
	}
	restore()
	wire(fn)
	return fn
}

func (lw *lowerer) lowerClosure(t *ast.ClosureExpr) *Func {
	restore := lw.beginFunc("", nil, t.Position)
	fn := lw.fn
	for _, p := range t.Params {
		// Closure parameters always bind clean; the walker never evaluates
		// their defaults.
		lw.skip(p.Default, "closure-param-default")
		fn.Params = append(fn.Params, Param{Name: p.Name, ByRef: p.ByRef})
	}
	for _, u := range t.Uses {
		fn.Uses = append(fn.Uses, u.Name)
	}
	fn.Body = lw.lowerBlock(t.Body)
	restore()
	wire(fn)
	return fn
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (lw *lowerer) lowerStmt(seq *Region, s ast.Stmt) {
	if s == nil {
		return
	}
	// Declarations first: registered ones are lowered (and accounted) from
	// the file's declaration list, not at their statement site.
	switch x := s.(type) {
	case *ast.FunctionDecl:
		if !lw.funcSet[x] {
			lw.skip(x, "unregistered-function")
		}
		return
	case *ast.ClassDecl:
		lw.lowerClassStmt(x)
		return
	}
	lw.count(s)
	switch x := s.(type) {
	case *ast.ExprStmt:
		lw.lowerExpr(x.X)
	case *ast.EchoStmt:
		for _, arg := range x.Args {
			r := lw.lowerExpr(arg)
			lw.emit(Instr{Op: OpPseudoSink, Name: "echo", A: r, Node: x, Expr: arg, Pos: x.Position})
		}
	case *ast.BlockStmt:
		for _, st := range x.Stmts {
			lw.lowerStmt(seq, st)
		}
	case *ast.IfStmt:
		lw.lowerExpr(x.Cond)
		lw.closeInto(seq)
		r := &Region{Kind: RIf, Node: x}
		r.Then = lw.lowerBlock(x.Then)
		if x.Else != nil {
			r.Else = lw.lowerStmtRegion(x.Else)
		}
		seq.Kids = append(seq.Kids, r)
	case *ast.WhileStmt:
		lw.lowerExpr(x.Cond)
		lw.closeInto(seq)
		seq.Kids = append(seq.Kids, &Region{Kind: RLoop2, Body: lw.lowerBlock(x.Body), Node: x})
	case *ast.DoWhileStmt:
		lw.closeInto(seq)
		seq.Kids = append(seq.Kids, &Region{Kind: RLoop2, Body: lw.lowerBlock(x.Body), Node: x})
		lw.lowerExpr(x.Cond)
	case *ast.ForStmt:
		for _, ex := range x.Init {
			lw.lowerExpr(ex)
		}
		for _, ex := range x.Cond {
			lw.lowerExpr(ex)
		}
		lw.closeInto(seq)
		post := lw.inBlock(func() Reg {
			for _, ex := range x.Post {
				lw.lowerExpr(ex)
			}
			return NoReg
		})
		seq.Kids = append(seq.Kids, &Region{Kind: RForLoop, Post: post, Body: lw.lowerBlock(x.Body), Node: x})
	case *ast.ForeachStmt:
		subj := lw.lowerExpr(x.Subject)
		if x.Key != nil {
			lw.emit(Instr{Op: OpAssignTo, A: subj, LV: lw.lowerLValue(x.Key), Node: x})
		}
		lw.emit(Instr{Op: OpAssignTo, A: subj, LV: lw.lowerLValue(x.Value), Node: x})
		lw.closeInto(seq)
		seq.Kids = append(seq.Kids, &Region{Kind: RLoop2, Body: lw.lowerBlock(x.Body), Node: x})
	case *ast.SwitchStmt:
		lw.lowerExpr(x.Subject)
		lw.closeInto(seq)
		r := &Region{Kind: RSwitch, Node: x}
		for _, c := range x.Cases {
			sc := SwitchCase{}
			if c.Cond != nil {
				cond := c.Cond
				sc.Cond = lw.inBlock(func() Reg { return lw.lowerExpr(cond) })
			} else {
				sc.Default = true
				r.HasDefault = true
			}
			sc.Body = lw.lowerStmts(c.Body)
			r.Cases = append(r.Cases, sc)
		}
		seq.Kids = append(seq.Kids, r)
	case *ast.ReturnStmt:
		r := NoReg
		if x.Result != nil {
			r = lw.lowerExpr(x.Result)
		}
		lw.emit(Instr{Op: OpReturn, A: r, Node: x, Pos: x.Position})
	case *ast.ThrowStmt:
		lw.lowerExpr(x.X)
	case *ast.TryStmt:
		// The walker runs try, catches and finally sequentially; keep the
		// outer sequence flat.
		lw.closeInto(seq)
		seq.Kids = append(seq.Kids, lw.lowerBlock(x.Body))
		for _, c := range x.Catches {
			if c.Var != "" {
				lw.emit(Instr{Op: OpSetVar, Name: c.Var, A: NoReg, Node: x})
			}
			lw.closeInto(seq)
			seq.Kids = append(seq.Kids, lw.lowerBlock(c.Body))
		}
		if x.Finally != nil {
			lw.closeInto(seq)
			seq.Kids = append(seq.Kids, lw.lowerBlock(x.Finally))
		}
	case *ast.GlobalStmt:
		for _, n := range x.Names {
			lw.emit(Instr{Op: OpSetVar, Name: n, A: NoReg, Node: x})
		}
	case *ast.StaticVarStmt:
		for i, n := range x.Names {
			r := NoReg
			if i < len(x.Inits) && x.Inits[i] != nil {
				r = lw.lowerExpr(x.Inits[i])
			}
			lw.emit(Instr{Op: OpSetVar, Name: n, A: r, Node: x})
		}
	case *ast.UnsetStmt:
		for _, arg := range x.Args {
			if v, ok := arg.(*ast.Variable); ok {
				lw.count(v)
				lw.emit(Instr{Op: OpSetVar, Name: v.Name, A: NoReg, Node: x})
			} else {
				lw.skip(arg, "unset-target")
			}
		}
	case *ast.IncludeStmt:
		r := lw.lowerExpr(x.X)
		lw.emit(Instr{Op: OpPseudoSink, Name: "include", A: r, Node: x, Expr: x.X, Pos: x.Position})
	case *ast.InlineHTMLStmt, *ast.BreakStmt, *ast.ContinueStmt:
		// No taint effect.
	default:
		lw.skipRest(s, "unhandled-stmt")
	}
}

func (lw *lowerer) lowerClassStmt(x *ast.ClassDecl) {
	lw.count(x)
	for _, p := range x.Props {
		lw.skip(p.Default, "class-prop-default")
	}
	for _, c := range x.Consts {
		lw.skip(c.Value, "class-const")
	}
	for _, m := range x.Methods {
		if !lw.funcSet[m] {
			lw.skip(m, "unregistered-method")
		}
	}
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

func (lw *lowerer) lowerExpr(x ast.Expr) Reg {
	if x == nil {
		return 0
	}
	lw.count(x)
	switch t := x.(type) {
	case *ast.Variable:
		return lw.emit1(Instr{Op: OpLoadVar, Name: t.Name, Node: t, Expr: t, Pos: t.Position})
	case *ast.VarVar:
		lw.lowerExpr(t.X)
		return 0
	case *ast.Ident, *ast.IntLit, *ast.FloatLit, *ast.BoolLit, *ast.NullLit,
		*ast.StringLit, *ast.ClassConstExpr, *ast.BadExpr:
		return 0
	case *ast.InterpString:
		args := make([]Reg, 0, len(t.Parts))
		for _, p := range t.Parts {
			args = append(args, lw.lowerExpr(p))
		}
		return lw.emit1(Instr{Op: OpInterp, Args: args, Node: t, Pos: t.Position})
	case *ast.ArrayLit:
		var args []Reg
		for _, it := range t.Items {
			if it.Key != nil {
				args = append(args, lw.lowerExpr(it.Key))
			}
			args = append(args, lw.lowerExpr(it.Value))
		}
		return lw.emit1(Instr{Op: OpUnion, Args: args, Node: t})
	case *ast.IndexExpr:
		base := ""
		if v, ok := t.X.(*ast.Variable); ok {
			base = v.Name
		}
		xe := t.X
		xb := lw.inBlock(func() Reg { return lw.lowerExpr(xe) })
		var ib *Block
		if t.Index != nil {
			ie := t.Index
			ib = lw.inBlock(func() Reg { return lw.lowerExpr(ie) })
		}
		return lw.emit1(Instr{Op: OpIndex, Name: base, Key: indexKey(t.Index),
			XBlk: xb, IBlk: ib, Node: t, Expr: t, Pos: t.Position})
	case *ast.PropExpr:
		if key := propKeyOf(t); key != "" {
			lw.count(t.X)
			lw.skip(t.Dyn, "prop-dyn")
			return lw.emit1(Instr{Op: OpLoadKey, Name: key, Node: t})
		}
		r := lw.lowerExpr(t.X)
		lw.skip(t.Dyn, "prop-dyn")
		return r
	case *ast.StaticPropExpr:
		return lw.emit1(Instr{Op: OpLoadKey,
			Name: "::" + strings.ToLower(t.Class) + "::" + t.Name, Node: t})
	case *ast.AssignExpr:
		rhs := lw.lowerExpr(t.Rhs)
		lv := lw.lowerLValue(t.Lhs)
		kind := AssignOther
		switch t.Op {
		case token.DotEq:
			kind = AssignAppend
		case token.Assign, token.CoalesceEq:
			kind = AssignPlain
		}
		return lw.emit1(Instr{Op: OpAssign, A: rhs, AKind: kind, LV: lv, Node: t, Pos: t.Position})
	case *ast.ListExpr:
		var args []Reg
		for _, it := range t.Items {
			if it != nil {
				args = append(args, lw.lowerExpr(it))
			}
		}
		return lw.emit1(Instr{Op: OpUnion, Args: args, Node: t})
	case *ast.BinaryExpr:
		ra := lw.lowerExpr(t.X)
		rb := lw.lowerExpr(t.Y)
		switch t.Op {
		case token.Dot:
			return lw.emit1(Instr{Op: OpConcat, A: ra, B: rb, Node: t, Pos: t.Position})
		case token.Coalesce:
			return lw.emit1(Instr{Op: OpUnion, Args: []Reg{ra, rb}, Node: t})
		}
		return 0
	case *ast.UnaryExpr:
		r := lw.lowerExpr(t.X)
		if t.Op == token.At {
			return r
		}
		return 0
	case *ast.IncDecExpr:
		lw.lowerExpr(t.X)
		return 0
	case *ast.CastExpr:
		r := lw.lowerExpr(t.X)
		switch t.Kind {
		case token.CastIntKw, token.CastFloatKw, token.CastBoolKw:
			return 0
		}
		return r
	case *ast.TernaryExpr:
		lw.lowerExpr(t.Cond)
		var va Reg
		if t.A != nil {
			va = lw.lowerExpr(t.A)
		} else {
			// The walker re-evaluates the short form's condition as the
			// result; re-lower it without re-counting the nodes.
			lw.noCount++
			va = lw.lowerExpr(t.Cond)
			lw.noCount--
		}
		vb := lw.lowerExpr(t.B)
		return lw.emit1(Instr{Op: OpUnion, Args: []Reg{va, vb}, Node: t})
	case *ast.IssetExpr:
		for _, arg := range t.Args {
			lw.lowerExpr(arg)
		}
		return 0
	case *ast.EmptyExpr:
		lw.lowerExpr(t.X)
		return 0
	case *ast.ExitExpr:
		if t.X != nil {
			r := lw.lowerExpr(t.X)
			lw.emit(Instr{Op: OpNamedSink, Name: "exit", A: r, Node: t, Expr: t.X, Pos: t.Position})
		}
		return 0
	case *ast.PrintExpr:
		r := lw.lowerExpr(t.X)
		lw.emit(Instr{Op: OpPseudoSink, Name: "print", A: r, Node: t, Expr: t.X, Pos: t.Position})
		return 0
	case *ast.IncludeExpr:
		r := lw.lowerExpr(t.X)
		lw.emit(Instr{Op: OpPseudoSink, Name: "include", A: r, Node: t, Expr: t.X, Pos: t.Position})
		return 0
	case *ast.CloneExpr:
		return lw.lowerExpr(t.X)
	case *ast.ClosureExpr:
		fn := lw.lowerClosure(t)
		lw.emit(Instr{Op: OpClosure, Closure: fn, Node: t})
		return 0
	case *ast.InstanceofExpr:
		lw.lowerExpr(t.X)
		return 0
	case *ast.MatchExpr:
		lw.lowerExpr(t.Subject)
		var results []Reg
		for _, arm := range t.Arms {
			for _, c := range arm.Conds {
				lw.lowerExpr(c)
			}
			results = append(results, lw.lowerExpr(arm.Result))
		}
		return lw.emit1(Instr{Op: OpUnion, Args: results, Node: t})
	case *ast.NewExpr:
		lw.skip(t.ClassExpr, "new-class-expr")
		var args []Reg
		for _, arg := range t.Args {
			args = append(args, lw.lowerExpr(arg))
		}
		return lw.emit1(Instr{Op: OpUnion, Args: args, Node: t})
	case *ast.CallExpr:
		args := make([]Reg, 0, len(t.Args))
		for _, arg := range t.Args {
			args = append(args, lw.lowerExpr(arg))
		}
		name := ast.CalleeName(t)
		if name == "" {
			// Dynamic call $f(...): the callee is evaluated after the
			// arguments, and argument taint propagates to the result.
			lw.lowerExpr(t.Fn)
			return lw.emit1(Instr{Op: OpUnion, Args: args, Node: t})
		}
		lw.count(t.Fn)
		return lw.emit1(Instr{Op: OpCall, Name: name, Args: args,
			ArgExprs: t.Args, Node: t, Expr: t, Pos: t.Position})
	case *ast.MethodCallExpr:
		recv := lw.lowerExpr(t.Recv)
		args := make([]Reg, 0, len(t.Args))
		for _, arg := range t.Args {
			args = append(args, lw.lowerExpr(arg))
		}
		if t.DynName != nil {
			lw.lowerExpr(t.DynName)
			return lw.emit1(Instr{Op: OpUnion, Args: args, Node: t})
		}
		recvName := ""
		if rv, ok := t.Recv.(*ast.Variable); ok {
			recvName = strings.ToLower(rv.Name)
		}
		return lw.emit1(Instr{Op: OpMethodCall, A: recv, Name: strings.ToLower(t.Name),
			Key: recvName, Args: args, ArgExprs: t.Args, Node: t, Expr: t, Pos: t.Position})
	case *ast.StaticCallExpr:
		args := make([]Reg, 0, len(t.Args))
		for _, arg := range t.Args {
			args = append(args, lw.lowerExpr(arg))
		}
		// Name and Key keep the original case: sink and sanitizer matching
		// lower-case them, static resolution needs the source spelling.
		return lw.emit1(Instr{Op: OpStaticCall, Name: t.Name, Key: t.Class,
			Args: args, ArgExprs: t.Args, Node: t, Expr: t, Pos: t.Position})
	default:
		lw.skipRest(x, "unhandled-expr")
		return 0
	}
}

// ---------------------------------------------------------------------------
// Assignment targets
// ---------------------------------------------------------------------------

// lowerLValue resolves an assignment target to its static form, mirroring
// the walker's assignTo: it examines only the spine of the target and never
// evaluates index or dynamic subexpressions.
func (lw *lowerer) lowerLValue(x ast.Expr) *LValue {
	if x == nil {
		return &LValue{Kind: LVNone}
	}
	switch t := x.(type) {
	case *ast.Variable:
		lw.count(t)
		return &LValue{Kind: LVVar, Name: t.Name, Strong: true}
	case *ast.IndexExpr:
		lw.count(t)
		lw.skip(t.Index, "assign-index-subexpr")
		root := lw.accountRoot(t.X)
		if root == "" {
			return &LValue{Kind: LVNone}
		}
		return &LValue{Kind: LVIndex, Name: root}
	case *ast.PropExpr:
		lw.count(t)
		if key := propKeyOf(t); key != "" {
			lw.count(t.X)
			lw.skip(t.Dyn, "prop-dyn")
			return &LValue{Kind: LVKey, Name: key}
		}
		lw.skip(t.X, "assign-prop-base")
		lw.skip(t.Dyn, "prop-dyn")
		return &LValue{Kind: LVNone}
	case *ast.StaticPropExpr:
		lw.count(t)
		return &LValue{Kind: LVKey,
			Name: "::" + strings.ToLower(t.Class) + "::" + t.Name, Strong: true}
	case *ast.ListExpr:
		lw.count(t)
		out := &LValue{Kind: LVList}
		for _, item := range t.Items {
			if item != nil {
				out.Kids = append(out.Kids, lw.lowerLValue(item))
			}
		}
		return out
	case *ast.ArrayLit:
		lw.count(t)
		out := &LValue{Kind: LVList}
		for _, item := range t.Items {
			lw.skip(item.Key, "assign-array-key")
			out.Kids = append(out.Kids, lw.lowerLValue(item.Value))
		}
		return out
	case *ast.VarVar:
		lw.count(t)
		lw.skip(t.X, "assign-varvar")
		return &LValue{Kind: LVNone}
	default:
		lw.skip(x, "assign-target")
		return &LValue{Kind: LVNone}
	}
}

// accountRoot mirrors the walker's rootVar: it resolves the environment key
// a nested index assignment merges into, counting the spine it examines and
// skipping the subexpressions the walker never evaluates.
func (lw *lowerer) accountRoot(x ast.Expr) string {
	for {
		switch t := x.(type) {
		case *ast.Variable:
			lw.count(t)
			return t.Name
		case *ast.IndexExpr:
			lw.count(t)
			lw.skip(t.Index, "assign-index-subexpr")
			x = t.X
		case *ast.PropExpr:
			lw.count(t)
			if k := propKeyOf(t); k != "" {
				lw.count(t.X)
				lw.skip(t.Dyn, "prop-dyn")
				return k
			}
			lw.skip(t.X, "assign-prop-base")
			lw.skip(t.Dyn, "prop-dyn")
			return ""
		default:
			if x != nil {
				lw.skip(x, "assign-target")
			}
			return ""
		}
	}
}

// propKeyOf builds the environment key for $var->prop chains ("var->prop"),
// mirroring the walker's propKey.
func propKeyOf(p *ast.PropExpr) string {
	base, ok := p.X.(*ast.Variable)
	if !ok || p.Name == "" {
		return ""
	}
	return base.Name + "->" + strings.ToLower(p.Name)
}

// indexKey renders a static index key the way the walker prints it in
// entry-point source names ($_GET[id]), mirroring indexKeyText.
func indexKey(idx ast.Expr) string {
	switch k := idx.(type) {
	case *ast.StringLit:
		return k.Value
	case *ast.IntLit:
		return k.Text
	case *ast.Variable:
		return "$" + k.Name
	case nil:
		return ""
	default:
		return "?"
	}
}

// ---------------------------------------------------------------------------
// CFG wiring
// ---------------------------------------------------------------------------

// wire links a function's blocks into a conventional CFG: the region tree's
// evaluation order becomes explicit Succs/Preds edges, loop regions get back
// edges, branch regions fan out and rejoin, and instruction-operand
// sub-blocks get round-trip edges to their owner.
func wire(f *Func) {
	for _, p := range f.Params {
		if p.Default != nil {
			wireInstrBlocks(p.Default)
		}
	}
	wireRegion(f.Body, nil)
}

// wireRegion adds edges for r given its predecessor exit set and returns
// r's own exit set.
func wireRegion(r *Region, preds []*Block) []*Block {
	if r == nil {
		return preds
	}
	switch r.Kind {
	case RBasic:
		for _, p := range preds {
			addEdge(p, r.Blk)
		}
		wireInstrBlocks(r.Blk)
		return []*Block{r.Blk}
	case RSeq:
		cur := preds
		for _, k := range r.Kids {
			cur = wireRegion(k, cur)
		}
		return cur
	case RIf:
		thenExits := wireRegion(r.Then, preds)
		elseExits := preds
		if r.Else != nil {
			elseExits = wireRegion(r.Else, preds)
		}
		return unionBlocks(thenExits, elseExits)
	case RLoop2:
		exits := wireRegion(r.Body, preds)
		for _, e := range exits {
			for _, h := range firstBlocks(r.Body) {
				addEdge(e, h)
			}
		}
		return exits
	case RForLoop:
		exits := wireRegion(r.Body, preds)
		if r.Post != nil {
			for _, e := range exits {
				addEdge(e, r.Post)
			}
			for _, h := range firstBlocks(r.Body) {
				addEdge(r.Post, h)
			}
			wireInstrBlocks(r.Post)
		}
		return exits
	case RSwitch:
		var exits []*Block
		for _, c := range r.Cases {
			cp := preds
			if c.Cond != nil {
				for _, p := range preds {
					addEdge(p, c.Cond)
				}
				wireInstrBlocks(c.Cond)
				cp = []*Block{c.Cond}
			}
			exits = unionBlocks(exits, wireRegion(c.Body, cp))
		}
		if !r.HasDefault {
			exits = unionBlocks(exits, preds)
		}
		return exits
	}
	return preds
}

// wireInstrBlocks adds round-trip edges for instruction-operand sub-blocks
// (OpIndex base/index evaluations), which execute inline within their owner.
func wireInstrBlocks(b *Block) {
	for i := range b.Instrs {
		ins := &b.Instrs[i]
		if ins.XBlk != nil {
			addEdge(b, ins.XBlk)
			addEdge(ins.XBlk, b)
			wireInstrBlocks(ins.XBlk)
		}
		if ins.IBlk != nil {
			addEdge(b, ins.IBlk)
			addEdge(ins.IBlk, b)
			wireInstrBlocks(ins.IBlk)
		}
	}
}

// firstBlocks returns a region's entry blocks — the targets of back edges.
func firstBlocks(r *Region) []*Block {
	if r == nil {
		return nil
	}
	switch r.Kind {
	case RBasic:
		return []*Block{r.Blk}
	case RSeq:
		for _, k := range r.Kids {
			if h := firstBlocks(k); len(h) > 0 {
				return h
			}
		}
		return nil
	case RIf:
		return unionBlocks(firstBlocks(r.Then), firstBlocks(r.Else))
	case RLoop2, RForLoop:
		return firstBlocks(r.Body)
	case RSwitch:
		var out []*Block
		for _, c := range r.Cases {
			if c.Cond != nil {
				out = unionBlocks(out, []*Block{c.Cond})
			} else {
				out = unionBlocks(out, firstBlocks(c.Body))
			}
		}
		return out
	}
	return nil
}

func addEdge(from, to *Block) {
	if from == nil || to == nil || containsBlock(from.Succs, to) {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

func unionBlocks(a, b []*Block) []*Block {
	out := a
	for _, x := range b {
		if !containsBlock(out, x) {
			out = append(out, x)
		}
	}
	return out
}
