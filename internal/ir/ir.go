// Package ir lowers the PHP AST into a compact three-address intermediate
// representation: straight-line instruction blocks linked into an explicit
// control-flow graph per function, organized by a structured region tree
// that preserves the evaluation order the taint engine's abstract
// interpretation depends on.
//
// Lowering happens once per file; the result is immutable and shared
// read-only across every weapon-class task, so the per-(file, class) work
// collapses from "re-interpret the syntax tree" to "run a flat instruction
// tape". Class-dependent decisions (is this variable an entry point? is this
// callee a sanitizer for the class?) are deliberately left to the evaluator:
// instructions carry the names and sub-evaluations both outcomes need, and
// the evaluator picks the path at run time.
package ir

import (
	"repro/internal/php/ast"
	"repro/internal/php/token"
)

// Revision identifies the lowering semantics. It participates in the scan
// engine's config digest, so bumping it invalidates incremental result
// stores whose entries were computed under older lowering rules.
const Revision = 1

// Reg is a virtual register index into a function activation's value slots.
type Reg = int32

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op is an IR instruction opcode.
type Op uint8

const (
	// OpConst produces an untainted constant value.
	OpConst Op = iota
	// OpCopy copies register A into Dst.
	OpCopy
	// OpLoadVar loads variable Name; the evaluator substitutes a tainted
	// source value when Name is an entry-point variable for its class.
	OpLoadVar
	// OpLoadKey loads an environment cell by structured key Name
	// ("var->prop" or "::class::prop"); never an entry point.
	OpLoadKey
	// OpIndex reads a subscript x[i]. Name is the base variable name when
	// the base is syntactically a plain variable ("" otherwise) and Key the
	// static index key text. XBlk evaluates the base, IBlk the index; the
	// evaluator runs IBlk alone on the entry-point path and XBlk+IBlk
	// otherwise (mirroring the walker's two branches).
	OpIndex
	// OpUnion merges Args into Dst.
	OpUnion
	// OpConcat merges A and B and appends a "concatenation" trace step when
	// the result is tainted.
	OpConcat
	// OpInterp merges Args and appends a "string interpolation" step when
	// the result is tainted.
	OpInterp
	// OpAssign performs an assignment expression: reads A (the rhs value),
	// applies the AKind flavor (plain / append / arithmetic), writes the
	// result through LV and leaves it in Dst.
	OpAssign
	// OpAssignTo writes register A through LV without any trace step
	// (foreach key/value binding).
	OpAssignTo
	// OpSetVar sets environment cell Name to register A, or to the clean
	// value when A is NoReg (catch variables, global/unset declarations).
	OpSetVar
	// OpCall is a named function call Name(Args...). The evaluator applies
	// the full legacy pipeline: sanitizer, entry-point function, sink
	// check, taint-through builtins, by-ref builtins, then user-function
	// summary application.
	OpCall
	// OpMethodCall is a method call: receiver in A, lower-case method in
	// Name, static receiver variable name (for sink matching) in Key.
	OpMethodCall
	// OpStaticCall is Class::m(Args...): lower-case method in Name, class
	// in Key.
	OpStaticCall
	// OpClosure evaluates Closure's body in a fresh environment seeded from
	// the use() clause; Dst receives the clean value.
	OpClosure
	// OpPseudoSink checks pseudo sink Name (echo/print/include) against
	// register A.
	OpPseudoSink
	// OpNamedSink checks named sink Name (exit) against register A.
	OpNamedSink
	// OpReturn merges register A (or the clean value when A is NoReg) into
	// the activation's return accumulator.
	OpReturn
)

var opNames = [...]string{
	OpConst: "const", OpCopy: "copy", OpLoadVar: "loadvar",
	OpLoadKey: "loadkey", OpIndex: "index", OpUnion: "union",
	OpConcat: "concat", OpInterp: "interp", OpAssign: "assign",
	OpAssignTo: "assignto", OpSetVar: "setvar", OpCall: "call",
	OpMethodCall: "methodcall", OpStaticCall: "staticcall",
	OpClosure: "closure", OpPseudoSink: "pseudosink",
	OpNamedSink: "namedsink", OpReturn: "return",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// AssignKind distinguishes OpAssign flavors.
type AssignKind uint8

const (
	// AssignPlain is `=` and `??=`: the rhs value flows through.
	AssignPlain AssignKind = iota
	// AssignAppend is `.=`: existing taint is kept and the rhs added.
	AssignAppend
	// AssignOther is every arithmetic compound assignment: the result is a
	// number, hence clean.
	AssignOther
)

// Instr is one three-address instruction. Operand meaning depends on Op;
// unused fields are zero. AST back-pointers (Node, Expr, ArgExprs) carry
// provenance the taint engine threads into candidates and trace steps.
type Instr struct {
	Op   Op
	Dst  Reg
	A, B Reg
	Args []Reg

	// Name / Key are identifier payloads; see the Op constants.
	Name string
	Key  string

	AKind AssignKind
	LV    *LValue

	Node     ast.Node
	Expr     ast.Expr
	ArgExprs []ast.Expr
	Pos      token.Position

	// XBlk / IBlk are OpIndex's conditional sub-evaluations.
	XBlk, IBlk *Block
	// Closure is OpClosure's lowered body.
	Closure *Func
}

// LVKind classifies assignment targets.
type LVKind uint8

const (
	// LVNone is an unassignable or unmodelled target (dropped write).
	LVNone LVKind = iota
	// LVVar is a plain variable; Name holds it.
	LVVar
	// LVIndex is x[i]...: the write merge-sets the root variable Name.
	LVIndex
	// LVKey is a structured cell ($x->p, Class::$p); Name holds the key and
	// Strong whether the write replaces (static prop) or merge-sets.
	LVKey
	// LVList fans the value out to Kids (list() / array destructuring).
	LVList
)

// LValue is a static assignment-target tree mirroring the walker's
// assignTo: index expressions and dynamic parts are resolved (or dropped)
// at lowering time, exactly as the walker ignores them at run time.
type LValue struct {
	Kind LVKind
	Name string
	// Strong marks targets the walker overwrites even with an untainted
	// value (plain variables and static properties); weak targets
	// ($x->p with a tainted value, array roots) merge instead.
	Strong bool
	Kids   []*LValue
}

// Block is one straight-line run of instructions: a basic block of the
// function's CFG. Result names the register holding the block's value for
// sub-evaluation blocks (OpIndex operands, parameter defaults).
type Block struct {
	ID     int
	Instrs []Instr
	Result Reg
	Succs  []*Block
	Preds  []*Block
}

// RegionKind classifies region-tree nodes.
type RegionKind uint8

const (
	// RSeq runs Kids in order.
	RSeq RegionKind = iota
	// RBasic runs the single block Blk.
	RBasic
	// RIf runs Then against a snapshot, restores, runs Else, then joins
	// (the walker's branch protocol). The condition was evaluated by the
	// preceding block.
	RIf
	// RLoop2 runs Body twice — the walker's two-pass loop widening
	// (while/do-while/foreach; condition evaluation sits in the
	// surrounding blocks).
	RLoop2
	// RForLoop runs Body, the Post block, then Body again (init and
	// condition sit in the preceding block).
	RForLoop
	// RSwitch runs each case against the entry snapshot and joins all
	// exit states; the subject was evaluated by the preceding block.
	RSwitch
)

// Region is a structured control-flow tree node. The evaluator interprets
// regions (which preserves the walker's exact evaluation order); the flat
// Succs/Preds edges on blocks expose the same structure as a conventional
// CFG for analyses and tooling.
type Region struct {
	Kind RegionKind
	Blk  *Block    // RBasic
	Kids []*Region // RSeq

	Then, Else *Region // RIf (Else may be nil)
	Body       *Region // RLoop2 / RForLoop
	Post       *Block  // RForLoop

	Cases      []SwitchCase // RSwitch
	HasDefault bool         // RSwitch: one of Cases is a default clause

	Node ast.Node
}

// SwitchCase is one arm of an RSwitch region.
type SwitchCase struct {
	// Cond evaluates the case expression; nil for default clauses.
	Cond *Block
	Body *Region
	// Default marks `default:` clauses.
	Default bool
}

// Param is one lowered function parameter.
type Param struct {
	Name  string
	ByRef bool
	// Default evaluates the parameter's default expression in the callee
	// frame; nil when the parameter has none (or for closures, whose
	// parameters always bind clean).
	Default *Block
}

// Func is one lowered function: a register count, a parameter list, the
// structured body and the flat list of every basic block it owns
// (including sub-evaluation and closure-free nested blocks).
type Func struct {
	// Name is the declared name ("" for file top level and closures).
	Name string
	// Decl is the source declaration; nil for top level and closures.
	Decl   *ast.FunctionDecl
	Params []Param
	// Uses lists closure use() binding names (closures only).
	Uses    []string
	Body    *Region
	Blocks  []*Block
	NumRegs int
	Pos     token.Position
}

// NumInstrs counts the function's instructions across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// Degraded records an AST subtree the lowering deliberately did not turn
// into instructions — constructs the taint walker itself never evaluates
// (assignment-index subexpressions, dynamic class expressions, class
// constant initializers). Every AST node is either lowered or accounted
// here; nothing is dropped silently.
type Degraded struct {
	// Reason names the construct class, e.g. "assign-index-subexpr".
	Reason string
	Pos    token.Position
	// Nodes is the subtree's node count (as ast.Inspect would count it).
	Nodes int
}

// File is the lowered form of one source file.
type File struct {
	Name string
	// Top is the file's top-level pseudo-function.
	Top *Func
	// Funcs holds every registered function declaration in source order —
	// the same order the taint engine's uncalled-function pass uses.
	Funcs []*Func
	// ByDecl maps declarations to their lowered form.
	ByDecl map[*ast.FunctionDecl]*Func

	// Visited and Skipped account every AST node: Visited were lowered,
	// Skipped are covered by Notes. Their sum equals the file's total
	// ast.Inspect node count — the FuzzLower invariant.
	Visited int
	Skipped int
	Notes   []Degraded

	// Aggregate shape counters (across Top, Funcs and nested closures).
	NumFuncs  int
	NumBlocks int
	NumInstrs int
}
