package ir

import (
	"fmt"
	"strings"
)

// Dump renders the lowered file as deterministic text: function headers,
// the region tree and every basic block's instruction listing. Two lowerings
// of the same AST produce byte-identical dumps; no map order or pointer
// value leaks into the output.
func Dump(f *File) string {
	var b strings.Builder
	fmt.Fprintf(&b, "file %s visited=%d skipped=%d\n", f.Name, f.Visited, f.Skipped)
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "degraded %s at %d:%d nodes=%d\n", n.Reason, n.Pos.Line, n.Pos.Column, n.Nodes)
	}
	dumpFunc(&b, f.Top, "top", 0)
	for _, fn := range f.Funcs {
		dumpFunc(&b, fn, "func "+fn.Name, 0)
	}
	return b.String()
}

// DumpFunc renders one lowered function.
func DumpFunc(fn *Func) string {
	var b strings.Builder
	dumpFunc(&b, fn, "func "+fn.Name, 0)
	return b.String()
}

func dumpFunc(b *strings.Builder, fn *Func, label string, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s regs=%d blocks=%d at %d:%d\n",
		ind, label, fn.NumRegs, len(fn.Blocks), fn.Pos.Line, fn.Pos.Column)
	for i, p := range fn.Params {
		fmt.Fprintf(b, "%s  param %d %s byref=%v", ind, i, p.Name, p.ByRef)
		if p.Default != nil {
			fmt.Fprintf(b, " default=b%d", p.Default.ID)
		}
		b.WriteByte('\n')
	}
	for _, u := range fn.Uses {
		fmt.Fprintf(b, "%s  use %s\n", ind, u)
	}
	dumpRegion(b, fn.Body, depth+1)
	for _, blk := range fn.Blocks {
		dumpBlock(b, blk, depth+1)
	}
}

func dumpRegion(b *strings.Builder, r *Region, depth int) {
	if r == nil {
		return
	}
	ind := strings.Repeat("  ", depth)
	switch r.Kind {
	case RBasic:
		fmt.Fprintf(b, "%sbasic b%d\n", ind, r.Blk.ID)
	case RSeq:
		fmt.Fprintf(b, "%sseq\n", ind)
		for _, k := range r.Kids {
			dumpRegion(b, k, depth+1)
		}
	case RIf:
		fmt.Fprintf(b, "%sif\n", ind)
		dumpRegion(b, r.Then, depth+1)
		if r.Else != nil {
			fmt.Fprintf(b, "%selse\n", ind)
			dumpRegion(b, r.Else, depth+1)
		}
	case RLoop2:
		fmt.Fprintf(b, "%sloop2\n", ind)
		dumpRegion(b, r.Body, depth+1)
	case RForLoop:
		post := -1
		if r.Post != nil {
			post = r.Post.ID
		}
		fmt.Fprintf(b, "%sfor post=b%d\n", ind, post)
		dumpRegion(b, r.Body, depth+1)
	case RSwitch:
		fmt.Fprintf(b, "%sswitch default=%v\n", ind, r.HasDefault)
		for _, c := range r.Cases {
			if c.Cond != nil {
				fmt.Fprintf(b, "%s  case b%d\n", ind, c.Cond.ID)
			} else {
				fmt.Fprintf(b, "%s  default\n", ind)
			}
			dumpRegion(b, c.Body, depth+2)
		}
	}
}

func dumpBlock(b *strings.Builder, blk *Block, depth int) {
	ind := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%sb%d result=r%d succs=%s preds=%s\n",
		ind, blk.ID, blk.Result, blockIDs(blk.Succs), blockIDs(blk.Preds))
	for _, ins := range blk.Instrs {
		fmt.Fprintf(b, "%s  %s\n", ind, instrString(ins))
	}
	for _, ins := range blk.Instrs {
		if ins.Closure != nil {
			dumpFunc(b, ins.Closure, "closure", depth+1)
		}
	}
}

func blockIDs(bs []*Block) string {
	if len(bs) == 0 {
		return "[]"
	}
	parts := make([]string, len(bs))
	for i, b := range bs {
		parts[i] = fmt.Sprintf("b%d", b.ID)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func instrString(ins Instr) string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d = %s", ins.Dst, ins.Op)
	if ins.Name != "" {
		fmt.Fprintf(&b, " %q", ins.Name)
	}
	if ins.Key != "" {
		fmt.Fprintf(&b, " key=%q", ins.Key)
	}
	if ins.A != 0 {
		fmt.Fprintf(&b, " a=r%d", ins.A)
	}
	if ins.B != 0 {
		fmt.Fprintf(&b, " b=r%d", ins.B)
	}
	if len(ins.Args) > 0 {
		parts := make([]string, len(ins.Args))
		for i, r := range ins.Args {
			parts[i] = fmt.Sprintf("r%d", r)
		}
		fmt.Fprintf(&b, " args=[%s]", strings.Join(parts, " "))
	}
	if ins.Op == OpAssign {
		fmt.Fprintf(&b, " kind=%d", ins.AKind)
	}
	if ins.LV != nil {
		fmt.Fprintf(&b, " lv=%s", lvString(ins.LV))
	}
	if ins.XBlk != nil {
		fmt.Fprintf(&b, " x=b%d", ins.XBlk.ID)
	}
	if ins.IBlk != nil {
		fmt.Fprintf(&b, " i=b%d", ins.IBlk.ID)
	}
	if ins.Pos.Line != 0 {
		fmt.Fprintf(&b, " @%d:%d", ins.Pos.Line, ins.Pos.Column)
	}
	return b.String()
}

func lvString(lv *LValue) string {
	switch lv.Kind {
	case LVNone:
		return "none"
	case LVVar:
		return fmt.Sprintf("var(%s)", lv.Name)
	case LVIndex:
		return fmt.Sprintf("index(%s)", lv.Name)
	case LVKey:
		if lv.Strong {
			return fmt.Sprintf("key!(%s)", lv.Name)
		}
		return fmt.Sprintf("key(%s)", lv.Name)
	case LVList:
		parts := make([]string, len(lv.Kids))
		for i, k := range lv.Kids {
			parts[i] = lvString(k)
		}
		return "list(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}
