package ir

import (
	"sync"
	"time"

	"repro/internal/php/ast"
)

// Provider resolves the lowered form of a function declaration. The taint
// engine uses it when a resolver hands back a declaration from another file:
// the scan-scoped cache lowers it once and every task shares the result.
type Provider interface {
	// Func returns the lowered form of fn, lowering on first use. fn must
	// have a body.
	Func(fn *ast.FunctionDecl) *Func
}

// CacheStats aggregates lowering work done through a Cache.
type CacheStats struct {
	// LowerWall is the summed wall time spent lowering (files and
	// stand-alone functions).
	LowerWall time.Duration
	// Files and Funcs count lowerings performed (not cache hits); Funcs
	// includes nested closures and stand-alone declaration lowerings.
	Files int64
	Funcs int64
	// Blocks and Instrs are the total lowered shape.
	Blocks int64
	Instrs int64
	// Degraded counts AST subtrees recorded as Degraded diagnostics.
	Degraded int64
}

// Cache lowers files and declarations once and shares the immutable results
// across concurrently running scan tasks.
type Cache struct {
	mu    sync.Mutex
	files map[*ast.File]*fileEntry
	funcs map[*ast.FunctionDecl]*Func
	stats CacheStats
}

type fileEntry struct {
	once sync.Once
	ir   *File
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		files: make(map[*ast.File]*fileEntry),
		funcs: make(map[*ast.FunctionDecl]*Func),
	}
}

// File returns the lowered form of f, lowering it exactly once; concurrent
// callers for the same file block until the first finishes.
func (c *Cache) File(f *ast.File) *File {
	c.mu.Lock()
	e := c.files[f]
	if e == nil {
		e = &fileEntry{}
		c.files[f] = e
	}
	c.mu.Unlock()

	e.once.Do(func() {
		start := time.Now()
		fir := LowerFile(f)
		wall := time.Since(start)
		e.ir = fir

		c.mu.Lock()
		c.stats.LowerWall += wall
		c.stats.Files++
		c.stats.Funcs += int64(fir.NumFuncs)
		c.stats.Blocks += int64(fir.NumBlocks)
		c.stats.Instrs += int64(fir.NumInstrs)
		c.stats.Degraded += int64(len(fir.Notes))
		// Register the file's declarations so cross-file resolution finds
		// them without re-lowering.
		for d, fn := range fir.ByDecl {
			if _, ok := c.funcs[d]; !ok {
				c.funcs[d] = fn
			}
		}
		c.mu.Unlock()
	})
	return e.ir
}

// Func implements Provider: it returns the lowered form of fn, lowering it
// on first use. Concurrent first uses may lower twice; the first stored
// result wins, so every caller observes one canonical *Func.
func (c *Cache) Func(fn *ast.FunctionDecl) *Func {
	c.mu.Lock()
	if got, ok := c.funcs[fn]; ok {
		c.mu.Unlock()
		return got
	}
	c.mu.Unlock()

	start := time.Now()
	lowered := LowerFunc(fn)
	wall := time.Since(start)

	c.mu.Lock()
	defer c.mu.Unlock()
	if got, ok := c.funcs[fn]; ok {
		return got
	}
	c.funcs[fn] = lowered
	c.stats.LowerWall += wall
	c.stats.Funcs++
	c.stats.Blocks += int64(len(lowered.Blocks))
	c.stats.Instrs += int64(lowered.NumInstrs())
	return lowered
}

// Stats returns a snapshot of the accumulated lowering statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
