package ir

import (
	"strings"
	"testing"

	"repro/internal/php/ast"
	"repro/internal/php/parser"
)

func countNodesTest(n ast.Node) int {
	total := 0
	ast.Inspect(n, func(ast.Node) bool {
		total++
		return true
	})
	return total
}

func lower(t *testing.T, src string) *File {
	t.Helper()
	f, errs := parser.Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return LowerFile(f)
}

// checkAccounting asserts the lowering's core invariant: every AST node is
// either lowered (Visited) or recorded in a Degraded note (Skipped).
func checkAccounting(t *testing.T, f *ast.File, fir *File) {
	t.Helper()
	total := countNodesTest(f)
	if fir.Visited+fir.Skipped != total {
		t.Errorf("accounting: visited=%d skipped=%d sum=%d, want %d AST nodes",
			fir.Visited, fir.Skipped, fir.Visited+fir.Skipped, total)
	}
	sum := 0
	for _, n := range fir.Notes {
		sum += n.Nodes
	}
	if sum != fir.Skipped {
		t.Errorf("notes account %d nodes, Skipped=%d", sum, fir.Skipped)
	}
}

const kitchenSink = `<?php
$a = $_GET['a'];
$b = "pre" . $a . "post";
$c = "interp $a here";
if ($a) { $d = $a; } elseif ($b) { $d = $b; } else { $d = "x"; }
while ($i < 3) { $e .= $a; $i++; }
do { $f = $a; } while ($f);
for ($i = 0; $i < 2; $i++) { $g = $a; }
foreach ($_POST as $k => $v) { echo $v; }
switch ($a) { case 1: $h = 1; break; default: $h = 2; }
try { $t = $a; } catch (Exception $ex) { echo $ex; } finally { echo $t; }
function wrap($s, $d = "q", &$out = null) { $out = $s; return "[" . $s . "]"; }
class DB {
	public $dsn = "default";
	const MODE = 1;
	function run($q) { mysql_query($q); }
	static function quote($s) { return "'" . $s . "'"; }
}
$db = new DB();
$db->run($a);
$db->prop = $a;
mysql_query(DB::quote($a));
DB::$stat = $a;
$fn = function ($p) use ($a) { return $p . $a; };
$fn("x");
$m = match($a) { 1, 2 => "low", default => "high" };
list($x, $y) = $_POST['arr'];
[$z] = $w;
$arr = array("k" => $a, $b);
$arr[$a] = $b;
$neg = -$a;
$not = !$a;
$at = @$a;
$cast = (int)$a;
$scast = (string)$a;
$tern = $a ? $b : $c;
$short = $a ?: $c;
$coal = $a ?? $c;
$a++;
isset($a, $b);
empty($a);
$inst = $a instanceof DB;
$$a = $b;
clone $db;
unset($a, $arr[0]);
global $gv;
static $sv = 1, $sv2;
print $b;
include "lib.php";
exit("bye");
echo $b, $c;
?>
trailing html
`

func TestLowerKitchenSinkAccounting(t *testing.T) {
	f, errs := parser.Parse("test.php", kitchenSink)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	fir := LowerFile(f)
	checkAccounting(t, f, fir)
	if fir.NumFuncs < 4 {
		t.Errorf("NumFuncs = %d, want >= 4 (wrap, run, quote, closure)", fir.NumFuncs)
	}
	if fir.NumInstrs == 0 || fir.NumBlocks == 0 {
		t.Errorf("empty shape: blocks=%d instrs=%d", fir.NumBlocks, fir.NumInstrs)
	}
}

func TestLowerDeterministic(t *testing.T) {
	f, errs := parser.Parse("test.php", kitchenSink)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	d1 := Dump(LowerFile(f))
	d2 := Dump(LowerFile(f))
	if d1 != d2 {
		t.Fatal("two lowerings of the same AST produced different dumps")
	}
}

func TestLowerCFGEdges(t *testing.T) {
	fir := lower(t, `<?php
$a = $_GET['a'];
if ($a) { $b = 1; } else { $b = 2; }
echo $b;`)
	// The top-level function must have blocks with at least one branch edge:
	// entry -> then, entry -> else, then/else -> join.
	edges := 0
	for _, b := range fir.Top.Blocks {
		edges += len(b.Succs)
		for _, s := range b.Succs {
			if !containsBlockT(s.Preds, b) {
				t.Errorf("succ edge b%d->b%d missing reverse pred edge", b.ID, s.ID)
			}
		}
	}
	if edges < 3 {
		t.Errorf("edges = %d, want >= 3 for an if/else diamond", edges)
	}
}

func containsBlockT(bs []*Block, b *Block) bool {
	for _, x := range bs {
		if x == b {
			return true
		}
	}
	return false
}

func TestLowerFuncOrderMatchesSource(t *testing.T) {
	fir := lower(t, `<?php
function zebra() {}
function apple() {}
function mango() {}`)
	var names []string
	for _, fn := range fir.Funcs {
		names = append(names, fn.Name)
	}
	want := "zebra,apple,mango"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("func order = %s, want %s", got, want)
	}
}

func TestLowerDegradedNotes(t *testing.T) {
	fir := lower(t, `<?php
class C { const K = "v"; public $p = "d"; }
$obj->$dyn = 1;
new $cls();`)
	if len(fir.Notes) == 0 {
		t.Fatal("expected Degraded notes for unevaluated constructs")
	}
	reasons := map[string]bool{}
	for _, n := range fir.Notes {
		reasons[n.Reason] = true
	}
	for _, want := range []string{"class-const", "class-prop-default", "new-class-expr"} {
		if !reasons[want] {
			t.Errorf("missing Degraded reason %q (have %v)", want, reasons)
		}
	}
}

func TestCacheSharesLowerings(t *testing.T) {
	f, errs := parser.Parse("test.php", `<?php function a($x) { return $x; } a(1);`)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	c := NewCache()
	f1 := c.File(f)
	f2 := c.File(f)
	if f1 != f2 {
		t.Fatal("cache returned distinct lowerings for the same file")
	}
	st := c.Stats()
	if st.Files != 1 {
		t.Errorf("Files = %d, want 1", st.Files)
	}
	var decl *ast.FunctionDecl
	for d := range f1.ByDecl {
		decl = d
	}
	if decl != nil {
		if got := c.Func(decl); got != f1.ByDecl[decl] {
			t.Error("Func() did not reuse the file lowering's function")
		}
	}
}

// FuzzLower asserts the lowering's safety contract on arbitrary inputs:
// it never panics, it is deterministic, and every AST node is either
// lowered or accounted as Degraded — nothing is silently dropped.
func FuzzLower(f *testing.F) {
	f.Add(kitchenSink)
	f.Add(`<?php echo $_GET['x'];`)
	f.Add(`<?php function f(&$a, $b = F) { switch ($a) { case $b: return; } }`)
	f.Add(`<?php $x = fn() => 1; $y = [1 => $x, ...$z];`)
	f.Add(`<?php class A extends B { function __construct() { parent::init(); } }`)
	f.Add("<?php $a = \"interp {$b['k']} $c->p\";")
	f.Fuzz(func(t *testing.T, src string) {
		file, _ := parser.Parse("fuzz.php", src)
		if file == nil {
			return
		}
		fir := LowerFile(file)
		total := countNodesTest(file)
		if fir.Visited+fir.Skipped != total {
			t.Fatalf("accounting: visited=%d skipped=%d, want sum %d", fir.Visited, fir.Skipped, total)
		}
		if Dump(fir) != Dump(LowerFile(file)) {
			t.Fatal("nondeterministic lowering")
		}
	})
}
