// Package parser implements a recursive-descent parser for the PHP subset
// used by the analyzer. It is tolerant: on a syntax error it records the
// error, emits a BadExpr, and resynchronizes at the next statement boundary
// so that large real-world files still yield a usable AST.
package parser

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/intern"
	"repro/internal/php/ast"
	"repro/internal/php/lexer"
	"repro/internal/php/token"
)

// Error is a syntax error at a position.
type Error struct {
	Pos token.Position
	Msg string
	// Degraded marks the error recorded when the parser hit its nesting
	// bound: the AST from that point on is a truncated approximation, not
	// just locally repaired. Callers surface it as a parse-degraded
	// diagnostic.
	Degraded bool
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// maxNestingDepth bounds statement/expression nesting. Recursive descent
// otherwise turns adversarial inputs (10^5 open parentheses, assignment or
// ternary chains) into unbounded stack growth; beyond the bound the parser
// records one Degraded error and consumes tokens without building nodes.
// One source-level nesting level costs a handful of counter increments
// (expr → assign → ternary → binary → unary), so the effective bound is
// roughly maxNestingDepth/5 nested expressions — far beyond real code.
const maxNestingDepth = 512

// arena chunk-allocates AST nodes of one type. Returned nodes are interior
// pointers into fixed-capacity chunks, so parsing a file performs roughly
// n/arenaChunk allocations for its hottest node kinds instead of n. Chunks
// are never reallocated (append stays within capacity), which keeps earlier
// node pointers valid; each chunk is retained by the AST that points into it,
// so its lifetime matches the nodes exactly.
type arena[T any] struct{ chunk []T }

// arenaChunk balances allocation count against the tail waste of the last,
// partially-used chunk that the AST keeps alive.
const arenaChunk = 16

func (a *arena[T]) new(v T) *T {
	if len(a.chunk) == cap(a.chunk) {
		a.chunk = make([]T, 0, arenaChunk)
	}
	a.chunk = append(a.chunk, v)
	return &a.chunk[len(a.chunk)-1]
}

// Parser holds parsing state for a single file.
type Parser struct {
	toks []token.Token
	pos  int
	errs []*Error
	file string
	tab  *intern.Table

	depth    int
	degraded bool

	curClass *ast.ClassDecl

	// Node arenas for the leaf and spine expression kinds that dominate
	// allocation counts. Reset with the parser; the chunks live on with the
	// returned AST.
	vars      arena[ast.Variable]
	idents    arena[ast.Ident]
	strs      arena[ast.StringLit]
	ints      arena[ast.IntLit]
	exprStmts arena[ast.ExprStmt]
	bins      arena[ast.BinaryExpr]
	assigns   arena[ast.AssignExpr]
}

// tokBufPool recycles token buffers across files; buffers are cleared before
// re-pooling so no token (or the strings it references) survives a file.
// parserPool recycles the Parser scratch state itself. Both are reentrant:
// buildInterp re-parses braced interpolations through Parse recursively.
var (
	tokBufPool = sync.Pool{New: func() any { return new([]token.Token) }}
	parserPool = sync.Pool{New: func() any { return new(Parser) }}
)

// enter counts one level of parse nesting; it reports false — after
// recording a single Degraded error — once the bound is exceeded. Callers
// pair it with a deferred leave.
func (p *Parser) enter() bool {
	p.depth++
	if p.depth <= maxNestingDepth {
		return true
	}
	if !p.degraded {
		p.degraded = true
		p.errs = append(p.errs, &Error{
			Pos:      p.cur().Pos,
			Msg:      fmt.Sprintf("nesting exceeds %d levels; parse degraded", maxNestingDepth),
			Degraded: true,
		})
	}
	return false
}

func (p *Parser) leave() { p.depth-- }

// bailExpr consumes one token (guaranteeing progress in any enclosing loop)
// and yields a BadExpr; used when the nesting bound is exceeded.
func (p *Parser) bailExpr() ast.Expr {
	t := p.cur()
	if t.Kind != token.EOF {
		p.next()
	}
	return &ast.BadExpr{Position: t.Pos}
}

// Parse lexes and parses src, returning the file AST and any errors. The AST
// is always non-nil; with errors it contains the recoverable prefix.
func Parse(file, src string) (*ast.File, []*Error) {
	return ParseInterned(file, src, nil)
}

// ParseInterned is Parse with a project-scoped intern table: declaration map
// keys are canonicalized through tab so a loader sharing one table across
// files deduplicates repeated lowered names. A nil table is valid and interns
// nothing; the resulting AST is identical either way.
func ParseInterned(file, src string, tab *intern.Table) (*ast.File, []*Error) {
	bufp := tokBufPool.Get().(*[]token.Token)
	buf := *bufp
	if cap(buf) == 0 {
		buf = make([]token.Token, 0, lexer.TokenCapHint(len(src)))
	}
	toks, lexErrs := lexer.TokensAppend(file, src, buf[:0])

	p := parserPool.Get().(*Parser)
	*p = Parser{toks: toks, file: file, tab: tab}
	for _, le := range lexErrs {
		p.errs = append(p.errs, &Error{Pos: le.Pos, Msg: le.Msg})
	}
	f := &ast.File{
		Name:    file,
		Funcs:   make(map[string]*ast.FunctionDecl),
		Classes: make(map[string]*ast.ClassDecl),
	}
	if n := len(toks); n > 16 {
		// Modest hint: top-level statements are sparse relative to tokens, and
		// the slice is retained with the AST, so cap the speculative capacity.
		f.Stmts = make([]ast.Stmt, 0, min(32, n/8+2))
	}
	for !p.at(token.EOF) {
		before := p.pos
		s := p.parseStmt()
		if s != nil {
			f.Stmts = append(f.Stmts, s)
		}
		if p.pos == before {
			// Guarantee progress on malformed input.
			p.next()
		}
	}
	indexDecls(f, f.Stmts, tab)
	errs := p.errs

	// Recycle the scratch state. The AST copies every string and position it
	// needs out of the token stream, so the buffer is scrubbed (dropping Parts
	// slices and string references) and reused by the next file.
	clear(toks)
	*bufp = toks[:0]
	tokBufPool.Put(bufp)
	*p = Parser{}
	parserPool.Put(p)
	return f, errs
}

// indexDecls records function and class declarations (recursively through
// blocks and control flow) in the file's lookup maps. Map keys are lowered
// through tab (nil behaves like strings.ToLower) so repeated names across a
// project share one canonical string.
func indexDecls(f *ast.File, stmts []ast.Stmt, tab *intern.Table) {
	for _, s := range stmts {
		switch d := s.(type) {
		case *ast.FunctionDecl:
			f.Funcs[tab.Lower(d.Name)] = d
			if d.Body != nil {
				indexDecls(f, d.Body.Stmts, tab) // nested declarations
			}
		case *ast.ClassDecl:
			f.Classes[tab.Lower(d.Name)] = d
			for _, m := range d.Methods {
				f.Funcs[tab.Intern(tab.Lower(d.Name)+"::"+tab.Lower(m.Name))] = m
			}
		case *ast.BlockStmt:
			indexDecls(f, d.Stmts, tab)
		case *ast.IfStmt:
			if d.Then != nil {
				indexDecls(f, d.Then.Stmts, tab)
			}
			if d.Else != nil {
				indexDecls(f, []ast.Stmt{d.Else}, tab)
			}
		case *ast.WhileStmt:
			indexDecls(f, d.Body.Stmts, tab)
		case *ast.ForStmt:
			indexDecls(f, d.Body.Stmts, tab)
		case *ast.ForeachStmt:
			indexDecls(f, d.Body.Stmts, tab)
		case *ast.TryStmt:
			indexDecls(f, d.Body.Stmts, tab)
			for _, c := range d.Catches {
				indexDecls(f, c.Body.Stmts, tab)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Token plumbing
// ---------------------------------------------------------------------------

func (p *Parser) cur() token.Token { return p.toks[p.pos] }

func (p *Parser) at(k token.Kind) bool { return p.toks[p.pos].Kind == k }

func (p *Parser) peekKind(n int) token.Kind {
	if p.pos+n >= len(p.toks) {
		return token.EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur().Kind)
	return token.Token{Kind: k, Pos: p.cur().Pos, End: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	const maxErrors = 50
	if len(p.errs) >= maxErrors {
		return
	}
	p.errs = append(p.errs, &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)})
}

// sync skips tokens until a likely statement boundary.
func (p *Parser) sync() {
	depth := 0
	for !p.at(token.EOF) {
		switch p.cur().Kind {
		case token.Semicolon:
			if depth == 0 {
				p.next()
				return
			}
		case token.LBrace, token.LParen, token.LBracket:
			depth++
		case token.RBrace, token.RParen, token.RBracket:
			if depth == 0 {
				return
			}
			depth--
		}
		p.next()
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *Parser) parseStmt() ast.Stmt {
	defer p.leave()
	if !p.enter() {
		if !p.at(token.EOF) {
			p.next()
		}
		return nil
	}
	t := p.cur()
	switch t.Kind {
	case token.InlineHTML:
		p.next()
		return &ast.InlineHTMLStmt{Text: t.Value, Position: t.Pos, EndPos: t.End}
	case token.Semicolon:
		p.next()
		return nil
	case token.LBrace:
		return p.parseBlock()
	case token.KwEcho:
		return p.parseEcho()
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwDo:
		return p.parseDoWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwForeach:
		return p.parseForeach()
	case token.KwSwitch:
		return p.parseSwitch()
	case token.KwBreak:
		p.next()
		if p.at(token.IntLit) {
			p.next()
		}
		p.stmtEnd()
		return &ast.BreakStmt{Position: t.Pos}
	case token.KwContinue:
		p.next()
		if p.at(token.IntLit) {
			p.next()
		}
		p.stmtEnd()
		return &ast.ContinueStmt{Position: t.Pos}
	case token.KwReturn:
		p.next()
		var res ast.Expr
		if !p.at(token.Semicolon) && !p.at(token.EOF) && !p.at(token.RBrace) {
			res = p.parseExpr()
		}
		p.stmtEnd()
		return &ast.ReturnStmt{Result: res, Position: t.Pos}
	case token.KwGlobal:
		return p.parseGlobal()
	case token.KwStatic:
		// `static $x = ...;` vs `static::` / closure modifiers.
		if p.peekKind(1) == token.Variable {
			return p.parseStaticVars()
		}
		return p.parseExprStmt()
	case token.KwUnset:
		return p.parseUnset()
	case token.KwThrow:
		p.next()
		x := p.parseExpr()
		p.stmtEnd()
		return &ast.ThrowStmt{X: x, Position: t.Pos}
	case token.KwTry:
		return p.parseTry()
	case token.KwFunction:
		// Distinguish declaration from closure expression statement.
		if p.peekKind(1) == token.Ident || (p.peekKind(1) == token.Amp && p.peekKind(2) == token.Ident) {
			return p.parseFunctionDecl(false, nil)
		}
		return p.parseExprStmt()
	case token.KwAbstract, token.KwFinal:
		p.next()
		if p.at(token.KwClass) {
			return p.parseClass(false)
		}
		p.errorf("expected class after %s", t.Value)
		p.sync()
		return nil
	case token.KwClass:
		return p.parseClass(false)
	case token.KwInterface:
		return p.parseClass(true)
	case token.Ident:
		// "trait" is a contextual keyword: `trait Name { ... }` parses like
		// a class (trait members are methods/properties for our analyses).
		if strings.EqualFold(t.Value, "trait") &&
			p.peekKind(1) == token.Ident && p.peekKind(2) == token.LBrace {
			return p.parseClass(false)
		}
		return p.parseExprStmt()
	case token.KwInclude, token.KwIncludeOnce, token.KwRequire, token.KwRequireOnce:
		p.next()
		x := p.parseExpr()
		p.stmtEnd()
		return &ast.IncludeStmt{
			X:        x,
			Once:     t.Kind == token.KwIncludeOnce || t.Kind == token.KwRequireOnce,
			Require:  t.Kind == token.KwRequire || t.Kind == token.KwRequireOnce,
			Position: t.Pos,
		}
	case token.KwNamespace:
		// Skip `namespace Foo\Bar;` — namespaces don't affect taint flow in
		// the subset we analyze.
		p.next()
		for !p.at(token.Semicolon) && !p.at(token.LBrace) && !p.at(token.EOF) {
			p.next()
		}
		if p.at(token.LBrace) {
			return p.parseBlock()
		}
		p.accept(token.Semicolon)
		return nil
	case token.KwUse:
		// `use Foo\Bar;` imports — skip to semicolon.
		p.next()
		for !p.at(token.Semicolon) && !p.at(token.EOF) {
			p.next()
		}
		p.accept(token.Semicolon)
		return nil
	case token.KwConst:
		p.next()
		for {
			name := p.expect(token.Ident)
			p.expect(token.Assign)
			val := p.parseExpr()
			_ = name
			_ = val
			if !p.accept(token.Comma) {
				break
			}
		}
		p.stmtEnd()
		return nil
	case token.KwDeclare:
		p.next()
		p.expect(token.LParen)
		for !p.at(token.RParen) && !p.at(token.EOF) {
			p.next()
		}
		p.expect(token.RParen)
		p.accept(token.Semicolon)
		return nil
	case token.EOF:
		return nil
	}
	return p.parseExprStmt()
}

// stmtEnd consumes a statement terminator (semicolon, or tolerates EOF /
// closing brace for robustness).
func (p *Parser) stmtEnd() {
	if p.accept(token.Semicolon) {
		return
	}
	if p.at(token.EOF) || p.at(token.RBrace) || p.at(token.InlineHTML) {
		return
	}
	p.errorf("expected ';', found %s", p.cur().Kind)
	p.sync()
}

func (p *Parser) parseExprStmt() ast.Stmt {
	x := p.parseExpr()
	p.stmtEnd()
	if _, bad := x.(*ast.BadExpr); bad {
		return nil
	}
	return p.exprStmts.new(ast.ExprStmt{X: x})
}

func (p *Parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBrace)
	b := &ast.BlockStmt{Position: lb.Pos}
	if !p.at(token.RBrace) && !p.at(token.EOF) {
		b.Stmts = make([]ast.Stmt, 0, 4)
	}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.next()
		}
	}
	rb := p.expect(token.RBrace)
	b.EndPos = rb.End
	return b
}

// parseStmtAsBlock parses a single statement or block and always returns a
// block, so control-flow bodies are uniform.
func (p *Parser) parseStmtAsBlock() *ast.BlockStmt {
	if p.at(token.LBrace) {
		return p.parseBlock()
	}
	pos := p.cur().Pos
	s := p.parseStmt()
	b := &ast.BlockStmt{Position: pos, EndPos: pos}
	if s != nil {
		b.Stmts = []ast.Stmt{s}
		b.EndPos = s.End()
	}
	return b
}

// parseAltBlock parses statements until one of the given end keywords, for
// the alternative syntax (if: ... endif;).
func (p *Parser) parseAltBlock(ends ...token.Kind) *ast.BlockStmt {
	b := &ast.BlockStmt{Position: p.cur().Pos}
	for !p.at(token.EOF) {
		for _, e := range ends {
			if p.at(e) {
				b.EndPos = p.cur().Pos
				return b
			}
		}
		before := p.pos
		if s := p.parseStmt(); s != nil {
			b.Stmts = append(b.Stmts, s)
		}
		if p.pos == before {
			p.next()
		}
	}
	b.EndPos = p.cur().Pos
	return b
}

func (p *Parser) parseEcho() ast.Stmt {
	t := p.next()
	s := &ast.EchoStmt{Position: t.Pos}
	s.Args = append(s.Args, p.parseExpr())
	for p.accept(token.Comma) {
		s.Args = append(s.Args, p.parseExpr())
	}
	p.stmtEnd()
	return s
}

func (p *Parser) parseIf() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.IfStmt{Cond: cond, Position: t.Pos}
	if p.accept(token.Colon) {
		// Alternative syntax.
		s.Then = p.parseAltBlock(token.KwElseif, token.KwElse, token.KwEndif)
		s.Else = p.parseAltElse()
		return s
	}
	s.Then = p.parseStmtAsBlock()
	switch {
	case p.at(token.KwElseif):
		s.Else = p.parseIf() // reuse: elseif behaves like `else if`
	case p.accept(token.KwElse):
		if p.at(token.KwIf) {
			s.Else = p.parseIf()
		} else {
			s.Else = p.parseStmtAsBlock()
		}
	}
	return s
}

// parseAltElse handles elseif/else/endif in alternative syntax.
func (p *Parser) parseAltElse() ast.Stmt {
	switch {
	case p.at(token.KwElseif):
		t := p.next()
		p.expect(token.LParen)
		cond := p.parseExpr()
		p.expect(token.RParen)
		p.accept(token.Colon)
		s := &ast.IfStmt{Cond: cond, Position: t.Pos}
		s.Then = p.parseAltBlock(token.KwElseif, token.KwElse, token.KwEndif)
		s.Else = p.parseAltElse()
		return s
	case p.accept(token.KwElse):
		p.accept(token.Colon)
		b := p.parseAltBlock(token.KwEndif)
		p.accept(token.KwEndif)
		p.accept(token.Semicolon)
		return b
	default:
		p.accept(token.KwEndif)
		p.accept(token.Semicolon)
		return nil
	}
}

func (p *Parser) parseWhile() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	var body *ast.BlockStmt
	if p.accept(token.Colon) {
		body = p.parseAltBlock(token.KwEndwhile)
		p.accept(token.KwEndwhile)
		p.accept(token.Semicolon)
	} else {
		body = p.parseStmtAsBlock()
	}
	return &ast.WhileStmt{Cond: cond, Body: body, Position: t.Pos}
}

func (p *Parser) parseDoWhile() ast.Stmt {
	t := p.next()
	body := p.parseStmtAsBlock()
	p.expect(token.KwWhile)
	p.expect(token.LParen)
	cond := p.parseExpr()
	p.expect(token.RParen)
	p.stmtEnd()
	return &ast.DoWhileStmt{Body: body, Cond: cond, Position: t.Pos}
}

func (p *Parser) parseFor() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	s := &ast.ForStmt{Position: t.Pos}
	if !p.at(token.Semicolon) {
		s.Init = p.parseExprList()
	}
	p.expect(token.Semicolon)
	if !p.at(token.Semicolon) {
		s.Cond = p.parseExprList()
	}
	p.expect(token.Semicolon)
	if !p.at(token.RParen) {
		s.Post = p.parseExprList()
	}
	p.expect(token.RParen)
	if p.accept(token.Colon) {
		s.Body = p.parseAltBlock(token.KwEndfor)
		p.accept(token.KwEndfor)
		p.accept(token.Semicolon)
	} else {
		s.Body = p.parseStmtAsBlock()
	}
	return s
}

func (p *Parser) parseForeach() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	subject := p.parseExpr()
	p.expect(token.KwAs)
	s := &ast.ForeachStmt{Subject: subject, Position: t.Pos}
	first := p.parseForeachTarget(s)
	if p.accept(token.DoubleArrow) {
		s.Key = first
		s.Value = p.parseForeachTarget(s)
	} else {
		s.Value = first
	}
	p.expect(token.RParen)
	if p.accept(token.Colon) {
		s.Body = p.parseAltBlock(token.KwEndforeach)
		p.accept(token.KwEndforeach)
		p.accept(token.Semicolon)
	} else {
		s.Body = p.parseStmtAsBlock()
	}
	return s
}

func (p *Parser) parseForeachTarget(s *ast.ForeachStmt) ast.Expr {
	if p.accept(token.Amp) {
		s.ByRef = true
	}
	return p.parseExpr()
}

func (p *Parser) parseSwitch() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	subject := p.parseExpr()
	p.expect(token.RParen)
	s := &ast.SwitchStmt{Subject: subject, Position: t.Pos}
	alt := false
	if p.accept(token.Colon) {
		alt = true
	} else {
		p.expect(token.LBrace)
	}
	for !p.at(token.RBrace) && !p.at(token.KwEndswitch) && !p.at(token.EOF) {
		cpos := p.cur().Pos
		var cond ast.Expr
		switch {
		case p.accept(token.KwCase):
			cond = p.parseExpr()
		case p.accept(token.KwDefault):
		default:
			p.errorf("expected case or default, found %s", p.cur().Kind)
			before := p.pos
			p.sync()
			if p.pos == before {
				p.next() // guarantee progress on stray closers
			}
			continue
		}
		if !p.accept(token.Colon) {
			p.accept(token.Semicolon)
		}
		c := &ast.CaseClause{Cond: cond, Position: cpos}
		for !p.at(token.KwCase) && !p.at(token.KwDefault) && !p.at(token.RBrace) &&
			!p.at(token.KwEndswitch) && !p.at(token.EOF) {
			before := p.pos
			if st := p.parseStmt(); st != nil {
				c.Body = append(c.Body, st)
			}
			if p.pos == before {
				p.next()
			}
		}
		s.Cases = append(s.Cases, c)
	}
	if alt {
		p.accept(token.KwEndswitch)
		p.accept(token.Semicolon)
		s.EndPos = p.cur().Pos
	} else {
		rb := p.expect(token.RBrace)
		s.EndPos = rb.End
	}
	return s
}

func (p *Parser) parseGlobal() ast.Stmt {
	t := p.next()
	s := &ast.GlobalStmt{Position: t.Pos}
	for {
		v := p.expect(token.Variable)
		s.Names = append(s.Names, v.Value)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.stmtEnd()
	return s
}

func (p *Parser) parseStaticVars() ast.Stmt {
	t := p.next() // static
	s := &ast.StaticVarStmt{Position: t.Pos}
	for {
		v := p.expect(token.Variable)
		s.Names = append(s.Names, v.Value)
		var init ast.Expr
		if p.accept(token.Assign) {
			init = p.parseExpr()
		}
		s.Inits = append(s.Inits, init)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.stmtEnd()
	return s
}

func (p *Parser) parseUnset() ast.Stmt {
	t := p.next()
	p.expect(token.LParen)
	s := &ast.UnsetStmt{Position: t.Pos}
	if !p.at(token.RParen) {
		s.Args = p.parseExprList()
	}
	p.expect(token.RParen)
	p.stmtEnd()
	return s
}

func (p *Parser) parseTry() ast.Stmt {
	t := p.next()
	s := &ast.TryStmt{Position: t.Pos, Body: p.parseBlock()}
	for p.at(token.KwCatch) {
		ct := p.next()
		p.expect(token.LParen)
		c := &ast.CatchClause{Position: ct.Pos}
		for {
			p.accept(token.Backslash)
			id := p.expect(token.Ident)
			name := id.Value
			for p.accept(token.Backslash) {
				sub := p.expect(token.Ident)
				name += "\\" + sub.Value
			}
			c.Types = append(c.Types, name)
			if !p.accept(token.Pipe) {
				break
			}
		}
		if p.at(token.Variable) {
			c.Var = p.next().Value
		}
		p.expect(token.RParen)
		c.Body = p.parseBlock()
		s.Catches = append(s.Catches, c)
	}
	if p.accept(token.KwFinally) {
		s.Finally = p.parseBlock()
	}
	return s
}

// parseFunctionDecl parses `function name(params) { body }`. When method is
// true the declaration is a class method of cls.
func (p *Parser) parseFunctionDecl(method bool, cls *ast.ClassDecl) *ast.FunctionDecl {
	t := p.expect(token.KwFunction)
	d := &ast.FunctionDecl{Position: t.Pos, Class: cls}
	if p.accept(token.Amp) {
		d.ByRef = true
	}
	// Method names may collide with keywords (e.g. function list()); accept
	// any keyword-ish token as a name.
	nt := p.cur()
	if nt.Kind == token.Ident || nt.Kind.IsKeyword() {
		p.next()
		d.Name = nt.Value
	} else {
		p.errorf("expected function name, found %s", nt.Kind)
	}
	d.Params = p.parseParams()
	p.skipReturnType()
	if p.at(token.LBrace) {
		d.Body = p.parseBlock()
		d.EndPos = d.Body.EndPos
	} else {
		p.stmtEnd() // abstract / interface method
		d.EndPos = p.cur().Pos
	}
	_ = method
	return d
}

func (p *Parser) parseParams() []*ast.Param {
	p.expect(token.LParen)
	var params []*ast.Param
	for !p.at(token.RParen) && !p.at(token.EOF) {
		prm := &ast.Param{Position: p.cur().Pos}
		// Optional visibility (constructor promotion) and type hint.
		for p.at(token.KwPublic) || p.at(token.KwPrivate) || p.at(token.KwProtected) {
			p.next()
		}
		prm.TypeHint = p.parseTypeHint()
		if p.accept(token.Amp) {
			prm.ByRef = true
		}
		if p.accept(token.Ellipsis) {
			prm.Variadic = true
		}
		v := p.expect(token.Variable)
		prm.Name = v.Value
		if p.accept(token.Assign) {
			prm.Default = p.parseExpr()
		}
		params = append(params, prm)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return params
}

// parseTypeHint consumes an optional parameter type hint and returns its raw
// text ("" when absent).
func (p *Parser) parseTypeHint() string {
	if p.at(token.Question) &&
		(p.peekKind(1) == token.Ident || p.peekKind(1) == token.KwArray ||
			p.peekKind(1) == token.KwStatic || p.peekKind(1) == token.Backslash) {
		p.next()
	}
	var parts []string
	for {
		switch {
		case p.at(token.Ident) || p.at(token.KwArray) || p.at(token.KwStatic) ||
			p.at(token.KwNull) || p.at(token.KwFalse) || p.at(token.KwTrue):
			// Only a type hint if followed by a variable, &, ..., or | (union).
			k := p.peekKind(1)
			if k != token.Variable && k != token.Amp && k != token.Ellipsis &&
				k != token.Pipe && k != token.Backslash {
				if len(parts) == 0 {
					return ""
				}
			}
			parts = append(parts, p.next().Value)
			if p.accept(token.Backslash) {
				continue
			}
			if p.accept(token.Pipe) {
				continue
			}
			return strings.Join(parts, "|")
		case p.at(token.Backslash):
			p.next()
		default:
			return strings.Join(parts, "|")
		}
	}
}

// skipReturnType consumes `: type` after a parameter list.
func (p *Parser) skipReturnType() {
	if !p.at(token.Colon) {
		return
	}
	p.next()
	p.accept(token.Question)
	for p.at(token.Ident) || p.at(token.KwArray) || p.at(token.KwStatic) ||
		p.at(token.KwNull) || p.at(token.Backslash) || p.at(token.Pipe) ||
		p.at(token.KwFalse) || p.at(token.KwTrue) {
		p.next()
	}
}

func (p *Parser) parseClass(isInterface bool) ast.Stmt {
	t := p.next() // class / interface
	d := &ast.ClassDecl{Position: t.Pos, IsInterface: isInterface}
	name := p.expect(token.Ident)
	d.Name = name.Value
	if p.accept(token.KwExtends) {
		ext := p.expect(token.Ident)
		d.Parent = ext.Value
		for p.accept(token.Comma) { // interfaces may extend several
			p.expect(token.Ident)
		}
	}
	if p.accept(token.KwImplements) {
		for {
			id := p.expect(token.Ident)
			d.Interfaces = append(d.Interfaces, id.Value)
			if !p.accept(token.Comma) {
				break
			}
		}
	}
	p.expect(token.LBrace)
	prev := p.curClass
	p.curClass = d
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		before := p.pos
		p.parseClassMember(d)
		if p.pos == before {
			p.next() // guarantee progress on malformed members
		}
	}
	p.curClass = prev
	rb := p.expect(token.RBrace)
	d.EndPos = rb.End
	return d
}

func (p *Parser) parseClassMember(d *ast.ClassDecl) {
	isStatic := false
	for {
		switch p.cur().Kind {
		case token.KwPublic, token.KwPrivate, token.KwProtected, token.KwAbstract,
			token.KwFinal, token.KwVar:
			p.next()
			continue
		case token.KwStatic:
			isStatic = true
			p.next()
			continue
		}
		break
	}
	switch p.cur().Kind {
	case token.KwFunction:
		m := p.parseFunctionDecl(true, d)
		m.IsStatic = isStatic
		d.Methods = append(d.Methods, m)
	case token.KwConst:
		p.next()
		for {
			id := p.expect(token.Ident)
			p.expect(token.Assign)
			val := p.parseExpr()
			d.Consts = append(d.Consts, &ast.ConstDecl{Name: id.Value, Value: val, Position: id.Pos})
			if !p.accept(token.Comma) {
				break
			}
		}
		p.stmtEnd()
	case token.Variable:
		for {
			v := p.next()
			prop := &ast.PropertyDecl{Name: v.Value, IsStatic: isStatic, Position: v.Pos}
			if p.accept(token.Assign) {
				prop.Default = p.parseExpr()
			}
			d.Props = append(d.Props, prop)
			if !p.accept(token.Comma) {
				break
			}
		}
		p.stmtEnd()
	case token.Ident, token.Question, token.KwArray:
		// Typed property: consume the type then expect a variable.
		p.parseTypeHint()
		if p.at(token.Variable) {
			p.parseClassMember(d)
			return
		}
		p.errorf("unexpected token %s in class body", p.cur().Kind)
		p.sync()
	case token.KwUse:
		// Trait use — skip.
		p.next()
		for !p.at(token.Semicolon) && !p.at(token.LBrace) && !p.at(token.EOF) {
			p.next()
		}
		if p.at(token.LBrace) {
			depth := 0
			for !p.at(token.EOF) {
				if p.at(token.LBrace) {
					depth++
				}
				if p.at(token.RBrace) {
					depth--
					if depth == 0 {
						p.next()
						break
					}
				}
				p.next()
			}
		} else {
			p.accept(token.Semicolon)
		}
	default:
		p.errorf("unexpected token %s in class body", p.cur().Kind)
		p.sync()
	}
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)
// ---------------------------------------------------------------------------

func (p *Parser) parseExprList() []ast.Expr {
	var list []ast.Expr
	list = append(list, p.parseExpr())
	for p.accept(token.Comma) {
		list = append(list, p.parseExpr())
	}
	return list
}

// parseExpr parses a full expression including assignment.
func (p *Parser) parseExpr() ast.Expr {
	defer p.leave()
	if !p.enter() {
		return p.bailExpr()
	}
	return p.parseAssign()
}

func (p *Parser) parseAssign() ast.Expr {
	defer p.leave()
	if !p.enter() {
		return p.bailExpr()
	}
	lhs := p.parseTernary()
	t := p.cur()
	if !t.Kind.IsAssignOp() {
		return lhs
	}
	p.next()
	byRef := false
	if t.Kind == token.Assign && p.accept(token.Amp) {
		byRef = true
	}
	rhs := p.parseAssign() // right associative
	return p.assigns.new(ast.AssignExpr{Lhs: lhs, Op: t.Kind, Rhs: rhs, ByRef: byRef, Position: lhs.Pos()})
}

func (p *Parser) parseTernary() ast.Expr {
	defer p.leave()
	if !p.enter() {
		return p.bailExpr()
	}
	cond := p.parseBinary(1)
	if !p.at(token.Question) {
		return cond
	}
	p.next()
	t := &ast.TernaryExpr{Cond: cond, Position: cond.Pos()}
	if !p.at(token.Colon) {
		t.A = p.parseExpr()
	}
	p.expect(token.Colon)
	t.B = p.parseTernary()
	return t
}

// binaryPrec returns the precedence of a binary operator, 0 when not binary.
// Higher binds tighter.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.KwOrKw:
		return 1
	case token.KwXorKw:
		return 2
	case token.KwAndKw:
		return 3
	case token.OrOr:
		return 4
	case token.AndAnd:
		return 5
	case token.Pipe:
		return 6
	case token.Caret:
		return 7
	case token.Amp:
		return 8
	case token.Eq, token.NotEq, token.Identical, token.NotIdentical:
		return 9
	case token.Lt, token.Gt, token.LtEq, token.GtEq, token.Spaceship:
		return 10
	case token.Shl, token.Shr:
		return 11
	case token.Plus, token.Minus, token.Dot:
		return 12
	case token.Star, token.Slash, token.Percent:
		return 13
	case token.KwInstanceof:
		return 14
	case token.Pow:
		return 15
	case token.Coalesce:
		return 3 // low, right-assoc handled below
	}
	return 0
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	defer p.leave()
	if !p.enter() {
		return p.bailExpr()
	}
	x := p.parseUnary()
	for {
		t := p.cur()
		prec := binaryPrec(t.Kind)
		if prec == 0 || prec < minPrec {
			return x
		}
		p.next()
		if t.Kind == token.KwInstanceof {
			cls := ""
			if p.at(token.Ident) || p.at(token.KwStatic) {
				cls = p.next().Value
			} else if p.at(token.Variable) {
				p.next()
			}
			x = &ast.InstanceofExpr{X: x, Class: cls, Position: x.Pos()}
			continue
		}
		// ** and ?? are right associative.
		nextMin := prec + 1
		if t.Kind == token.Pow || t.Kind == token.Coalesce {
			nextMin = prec
		}
		y := p.parseBinary(nextMin)
		x = p.bins.new(ast.BinaryExpr{X: x, Op: t.Kind, Y: y, Position: x.Pos()})
	}
}

func (p *Parser) parseUnary() ast.Expr {
	defer p.leave()
	if !p.enter() {
		return p.bailExpr()
	}
	t := p.cur()
	switch t.Kind {
	case token.Not, token.Minus, token.Plus, token.Tilde, token.At:
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{Op: t.Kind, X: x, Position: t.Pos}
	case token.Inc, token.Dec:
		p.next()
		x := p.parseUnary()
		return &ast.IncDecExpr{X: x, Op: t.Kind, Prefix: true, Position: t.Pos}
	case token.CastIntKw, token.CastFloatKw, token.CastStringKw,
		token.CastBoolKw, token.CastArrayKw, token.CastObjectKw:
		p.next()
		x := p.parseUnary()
		return &ast.CastExpr{Kind: t.Kind, X: x, Position: t.Pos}
	case token.KwPrint:
		p.next()
		x := p.parseExpr()
		return &ast.PrintExpr{X: x, Position: t.Pos}
	case token.KwClone:
		p.next()
		x := p.parseUnary()
		return &ast.CloneExpr{X: x, Position: t.Pos}
	case token.KwNew:
		return p.parseNew()
	case token.KwInclude, token.KwIncludeOnce, token.KwRequire, token.KwRequireOnce:
		p.next()
		x := p.parseExpr()
		return &ast.IncludeExpr{
			X:        x,
			Once:     t.Kind == token.KwIncludeOnce || t.Kind == token.KwRequireOnce,
			Require:  t.Kind == token.KwRequire || t.Kind == token.KwRequireOnce,
			Position: t.Pos,
		}
	case token.KwThrow:
		// throw as expression (PHP 8).
		p.next()
		x := p.parseExpr()
		return &ast.UnaryExpr{Op: token.KwThrow, X: x, Position: t.Pos}
	case token.Amp:
		// Stray reference operator in expression context (&$x).
		p.next()
		return p.parseUnary()
	}
	return p.parsePostfix()
}

func (p *Parser) parseNew() ast.Expr {
	t := p.next()
	e := &ast.NewExpr{Position: t.Pos}
	switch {
	case p.at(token.Ident) || p.at(token.KwStatic):
		name := p.next().Value
		for p.accept(token.Backslash) {
			name = p.expect(token.Ident).Value
		}
		e.Class = name
	case p.at(token.Backslash):
		p.next()
		e.Class = p.expect(token.Ident).Value
	case p.at(token.Variable):
		v := p.next()
		e.ClassExpr = p.vars.new(ast.Variable{Name: v.Value, Position: v.Pos, EndPos: v.End})
	case p.at(token.KwClass):
		// Anonymous class: new class [(args)] [extends/implements] { ... }.
		p.next()
		if p.at(token.LParen) {
			e.Args, _ = p.parseArgs()
		}
		if p.accept(token.KwExtends) {
			e.Class = p.expect(token.Ident).Value
		}
		if p.accept(token.KwImplements) {
			p.expect(token.Ident)
			for p.accept(token.Comma) {
				p.expect(token.Ident)
			}
		}
		if p.at(token.LBrace) {
			anon := &ast.ClassDecl{Name: "class@anonymous", Position: t.Pos}
			p.expect(token.LBrace)
			prev := p.curClass
			p.curClass = anon
			for !p.at(token.RBrace) && !p.at(token.EOF) {
				before := p.pos
				p.parseClassMember(anon)
				if p.pos == before {
					p.next()
				}
			}
			p.curClass = prev
			rb := p.expect(token.RBrace)
			anon.EndPos = rb.End
		}
		e.EndPos = p.cur().Pos
		return e
	}
	if p.at(token.LParen) {
		e.Args, _ = p.parseArgs()
	}
	e.EndPos = p.cur().Pos
	return e
}

// parsePostfix parses a primary expression followed by postfix operations:
// calls, indexing, member access, increments.
func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		t := p.cur()
		switch t.Kind {
		case token.LParen:
			args, byRef := p.parseArgs()
			x = &ast.CallExpr{Fn: x, Args: args, ArgByRef: byRef, Position: x.Pos(), EndPos: p.prevEnd()}
		case token.LBracket:
			p.next()
			var idx ast.Expr
			if !p.at(token.RBracket) {
				idx = p.parseExpr()
			}
			rb := p.expect(token.RBracket)
			x = &ast.IndexExpr{X: x, Index: idx, Position: x.Pos(), EndPos: rb.End}
		case token.LBrace:
			// Legacy string offset $s{0} — only when x is a var-ish expr and
			// the brace is immediately followed by an expression + }.
			if !isVarish(x) {
				return x
			}
			save := p.pos
			p.next()
			if p.at(token.RBrace) {
				p.pos = save
				return x
			}
			idx := p.parseExpr()
			if !p.accept(token.RBrace) {
				p.pos = save
				return x
			}
			x = &ast.IndexExpr{X: x, Index: idx, Position: x.Pos(), EndPos: p.prevEnd()}
		case token.Arrow, token.NullArrow:
			p.next()
			x = p.parseMemberAccess(x)
		case token.DoubleColon:
			x = p.parseStaticAccess(x)
		case token.Inc, token.Dec:
			p.next()
			x = &ast.IncDecExpr{X: x, Op: t.Kind, Prefix: false, Position: x.Pos()}
		default:
			return x
		}
	}
}

func (p *Parser) prevEnd() token.Position {
	if p.pos > 0 {
		return p.toks[p.pos-1].End
	}
	return p.cur().Pos
}

func isVarish(x ast.Expr) bool {
	switch x.(type) {
	case *ast.Variable, *ast.IndexExpr, *ast.PropExpr:
		return true
	}
	return false
}

// parseMemberAccess parses the part after -> : prop, method(), dynamic.
func (p *Parser) parseMemberAccess(recv ast.Expr) ast.Expr {
	t := p.cur()
	switch {
	case t.Kind == token.Ident || t.Kind.IsKeyword():
		p.next()
		if p.at(token.LParen) {
			args, _ := p.parseArgs()
			return &ast.MethodCallExpr{Recv: recv, Name: t.Value, Args: args, Position: recv.Pos(), EndPos: p.prevEnd()}
		}
		return &ast.PropExpr{X: recv, Name: t.Value, Position: recv.Pos(), EndPos: t.End}
	case t.Kind == token.Variable:
		p.next()
		dyn := p.vars.new(ast.Variable{Name: t.Value, Position: t.Pos, EndPos: t.End})
		if p.at(token.LParen) {
			args, _ := p.parseArgs()
			return &ast.MethodCallExpr{Recv: recv, DynName: dyn, Args: args, Position: recv.Pos(), EndPos: p.prevEnd()}
		}
		return &ast.PropExpr{X: recv, Dyn: dyn, Position: recv.Pos(), EndPos: t.End}
	case t.Kind == token.LBrace:
		p.next()
		dyn := p.parseExpr()
		p.expect(token.RBrace)
		if p.at(token.LParen) {
			args, _ := p.parseArgs()
			return &ast.MethodCallExpr{Recv: recv, DynName: dyn, Args: args, Position: recv.Pos(), EndPos: p.prevEnd()}
		}
		return &ast.PropExpr{X: recv, Dyn: dyn, Position: recv.Pos(), EndPos: p.prevEnd()}
	default:
		p.errorf("expected member name after ->, found %s", t.Kind)
		return &ast.BadExpr{Position: t.Pos}
	}
}

// parseStaticAccess parses Class::member forms. recv must be an Ident (class
// name) or it degrades gracefully.
func (p *Parser) parseStaticAccess(recv ast.Expr) ast.Expr {
	p.next() // ::
	clsName := ""
	if id, ok := recv.(*ast.Ident); ok {
		clsName = id.Name
	}
	t := p.cur()
	switch {
	case t.Kind == token.Variable:
		p.next()
		return &ast.StaticPropExpr{Class: clsName, Name: t.Value, Position: recv.Pos(), EndPos: t.End}
	case t.Kind == token.Ident || t.Kind.IsKeyword():
		p.next()
		if p.at(token.LParen) {
			args, _ := p.parseArgs()
			return &ast.StaticCallExpr{Class: clsName, Name: t.Value, Args: args, Position: recv.Pos(), EndPos: p.prevEnd()}
		}
		return &ast.ClassConstExpr{Class: clsName, Name: t.Value, Position: recv.Pos(), EndPos: t.End}
	default:
		p.errorf("expected member after ::, found %s", t.Kind)
		return &ast.BadExpr{Position: t.Pos}
	}
}

func (p *Parser) parseArgs() ([]ast.Expr, []bool) {
	p.expect(token.LParen)
	var args []ast.Expr
	var byRef []bool
	if !p.at(token.RParen) && !p.at(token.EOF) {
		// Non-empty argument list: presize for the common few-argument call so
		// append does not reallocate per element.
		args = make([]ast.Expr, 0, 4)
		byRef = make([]bool, 0, 4)
	}
	for !p.at(token.RParen) && !p.at(token.EOF) {
		ref := p.accept(token.Amp)
		p.accept(token.Ellipsis) // spread
		// Named arguments: name: expr (PHP 8) — skip the label.
		if p.at(token.Ident) && p.peekKind(1) == token.Colon && p.peekKind(2) != token.Colon {
			p.next()
			p.next()
		}
		args = append(args, p.parseExpr())
		byRef = append(byRef, ref)
		if !p.accept(token.Comma) {
			break
		}
	}
	p.expect(token.RParen)
	return args, byRef
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.Variable:
		p.next()
		return p.vars.new(ast.Variable{Name: t.Value, Position: t.Pos, EndPos: t.End})
	case token.Dollar:
		p.next()
		if p.at(token.LBrace) {
			p.next()
			x := p.parseExpr()
			p.expect(token.RBrace)
			return &ast.VarVar{X: x, Position: t.Pos}
		}
		x := p.parsePrimary()
		return &ast.VarVar{X: x, Position: t.Pos}
	case token.Ident:
		// PHP 8 match expression (contextual keyword, with backtracking so
		// a function actually named match still parses as a call).
		if strings.EqualFold(t.Value, "match") && p.peekKind(1) == token.LParen {
			save := p.pos
			errsBefore := len(p.errs)
			if m := p.tryParseMatch(); m != nil {
				return m
			}
			p.pos = save
			p.errs = p.errs[:errsBefore]
		}
		p.next()
		name := t.Value
		endPos := t.End
		for p.at(token.Backslash) {
			p.next()
			sub := p.expect(token.Ident)
			name = sub.Value // keep last segment; namespaces are flattened
			endPos = sub.End
		}
		return p.idents.new(ast.Ident{Name: name, Position: t.Pos, EndPos: endPos})
	case token.Backslash:
		// Fully-qualified name: \App\Db\query — keep the last segment.
		p.next()
		id := p.expect(token.Ident)
		name := id.Value
		endPos := id.End
		for p.at(token.Backslash) {
			p.next()
			sub := p.expect(token.Ident)
			name = sub.Value
			endPos = sub.End
		}
		return p.idents.new(ast.Ident{Name: name, Position: t.Pos, EndPos: endPos})
	case token.IntLit:
		p.next()
		return p.ints.new(ast.IntLit{Text: t.Value, Position: t.Pos, EndPos: t.End})
	case token.FloatLit:
		p.next()
		return &ast.FloatLit{Text: t.Value, Position: t.Pos, EndPos: t.End}
	case token.StringLit:
		p.next()
		return p.strs.new(ast.StringLit{Value: t.Value, Position: t.Pos, EndPos: t.End})
	case token.TemplateString:
		p.next()
		return p.buildInterp(t)
	case token.KwTrue:
		p.next()
		return &ast.BoolLit{Value: true, Position: t.Pos}
	case token.KwFalse:
		p.next()
		return &ast.BoolLit{Value: false, Position: t.Pos}
	case token.KwNull:
		p.next()
		return &ast.NullLit{Position: t.Pos}
	case token.KwArray:
		p.next()
		if p.at(token.LParen) {
			return p.parseArrayLit(t.Pos, token.RParen)
		}
		return p.idents.new(ast.Ident{Name: "array", Position: t.Pos, EndPos: t.End})
	case token.LBracket:
		return p.parseArrayLit(t.Pos, token.RBracket)
	case token.KwList:
		p.next()
		return p.parseList(t.Pos)
	case token.LParen:
		p.next()
		x := p.parseExpr()
		p.expect(token.RParen)
		return x
	case token.KwIsset:
		p.next()
		p.expect(token.LParen)
		e := &ast.IssetExpr{Position: t.Pos}
		e.Args = p.parseExprList()
		rp := p.expect(token.RParen)
		e.EndPos = rp.End
		return e
	case token.KwEmpty:
		p.next()
		p.expect(token.LParen)
		x := p.parseExpr()
		rp := p.expect(token.RParen)
		return &ast.EmptyExpr{X: x, Position: t.Pos, EndPos: rp.End}
	case token.KwExit:
		p.next()
		e := &ast.ExitExpr{Position: t.Pos}
		if p.accept(token.LParen) {
			if !p.at(token.RParen) {
				e.X = p.parseExpr()
			}
			p.expect(token.RParen)
		}
		return e
	case token.KwFunction:
		return p.parseClosure(false)
	case token.KwFn:
		return p.parseClosure(true)
	case token.KwStatic:
		p.next()
		switch {
		case p.at(token.KwFunction):
			return p.parseClosure(false)
		case p.at(token.KwFn):
			return p.parseClosure(true)
		case p.at(token.DoubleColon):
			return p.parseStaticAccess(p.idents.new(ast.Ident{Name: "static", Position: t.Pos, EndPos: t.End}))
		}
		return p.idents.new(ast.Ident{Name: "static", Position: t.Pos, EndPos: t.End})
	case token.KwClass:
		// `::class` handled in parseStaticAccess; bare `class` here is an error.
		p.next()
		return p.idents.new(ast.Ident{Name: "class", Position: t.Pos, EndPos: t.End})
	}
	p.errorf("unexpected token %s in expression", t.Kind)
	// Leave statement terminators for stmtEnd so recovery does not swallow
	// the next statement.
	switch t.Kind {
	case token.Semicolon, token.RBrace, token.RParen, token.RBracket, token.EOF:
	default:
		p.next()
	}
	return &ast.BadExpr{Position: t.Pos}
}

// tryParseMatch parses `match (subject) { conds => result, ... }` from the
// "match" identifier. Returns nil (without reporting errors) when the shape
// does not fit, so the caller can backtrack.
func (p *Parser) tryParseMatch() ast.Expr {
	t := p.next() // "match"
	if !p.accept(token.LParen) {
		return nil
	}
	subject := p.parseExpr()
	if !p.accept(token.RParen) {
		return nil
	}
	if !p.accept(token.LBrace) {
		return nil // a call like match(...) without a brace body
	}
	m := &ast.MatchExpr{Subject: subject, Position: t.Pos}
	for !p.at(token.RBrace) && !p.at(token.EOF) {
		arm := &ast.MatchArm{}
		if p.at(token.KwDefault) {
			p.next()
		} else {
			arm.Conds = append(arm.Conds, p.parseExpr())
			for p.accept(token.Comma) {
				if p.at(token.DoubleArrow) {
					break // trailing comma before =>
				}
				arm.Conds = append(arm.Conds, p.parseExpr())
			}
		}
		if !p.accept(token.DoubleArrow) {
			return nil
		}
		arm.Result = p.parseExpr()
		m.Arms = append(m.Arms, arm)
		if !p.accept(token.Comma) {
			break
		}
	}
	rb := p.expect(token.RBrace)
	m.EndPos = rb.End
	return m
}

// buildInterp converts a TemplateString token into an InterpString expression.
// Backtick strings become a shell_exec call so the OSCI detector sees them.
func (p *Parser) buildInterp(t token.Token) ast.Expr {
	is := &ast.InterpString{Position: t.Pos, EndPos: t.End}
	for _, part := range t.Parts {
		if !part.IsVar {
			is.Parts = append(is.Parts, p.strs.new(ast.StringLit{Value: part.Literal, Position: t.Pos, EndPos: t.End}))
			continue
		}
		var e ast.Expr = p.vars.new(ast.Variable{Name: part.Var, Position: t.Pos, EndPos: t.End})
		switch {
		case part.Index != "":
			e = &ast.IndexExpr{
				X:        e,
				Index:    p.strs.new(ast.StringLit{Value: part.Index, Position: t.Pos, EndPos: t.End}),
				Position: t.Pos, EndPos: t.End,
			}
		case part.Prop != "":
			e = &ast.PropExpr{X: e, Name: part.Prop, Position: t.Pos, EndPos: t.End}
		case part.Expr != "":
			// Re-parse the braced expression.
			sub, errs := ParseInterned(p.file, "<?php "+part.Expr+";", p.tab)
			if len(errs) == 0 && len(sub.Stmts) == 1 {
				if es, ok := sub.Stmts[0].(*ast.ExprStmt); ok {
					e = es.X
				}
			}
		}
		is.Parts = append(is.Parts, e)
	}
	if t.Value == "`shell`" {
		return &ast.CallExpr{
			Fn:       p.idents.new(ast.Ident{Name: "shell_exec", Position: t.Pos, EndPos: t.End}),
			Args:     []ast.Expr{is},
			ArgByRef: []bool{false},
			Position: t.Pos, EndPos: t.End,
		}
	}
	return is
}

// parseArrayLit parses array(...) (close = RParen, "array" and "(" pending)
// or [...] (close = RBracket, "[" pending).
func (p *Parser) parseArrayLit(pos token.Position, closeKind token.Kind) ast.Expr {
	p.next() // ( or [
	a := &ast.ArrayLit{Position: pos}
	for !p.at(closeKind) && !p.at(token.EOF) {
		item := &ast.ArrayItem{Position: p.cur().Pos}
		if p.accept(token.Amp) {
			item.ByRef = true
		}
		first := p.parseExpr()
		if p.accept(token.DoubleArrow) {
			item.Key = first
			if p.accept(token.Amp) {
				item.ByRef = true
			}
			item.Value = p.parseExpr()
		} else {
			item.Value = first
		}
		a.Items = append(a.Items, item)
		if !p.accept(token.Comma) {
			break
		}
	}
	end := p.expect(closeKind)
	a.EndPos = end.End
	return a
}

func (p *Parser) parseList(pos token.Position) ast.Expr {
	p.expect(token.LParen)
	l := &ast.ListExpr{Position: pos}
	for !p.at(token.RParen) && !p.at(token.EOF) {
		if p.at(token.Comma) {
			l.Items = append(l.Items, nil)
			p.next()
			continue
		}
		l.Items = append(l.Items, p.parseExpr())
		if !p.accept(token.Comma) {
			break
		}
	}
	rp := p.expect(token.RParen)
	l.EndPos = rp.End
	return l
}

func (p *Parser) parseClosure(arrow bool) ast.Expr {
	t := p.next() // function / fn
	c := &ast.ClosureExpr{Position: t.Pos, IsArrow: arrow}
	p.accept(token.Amp)
	c.Params = p.parseParams()
	if !arrow && p.accept(token.KwUse) {
		p.expect(token.LParen)
		for !p.at(token.RParen) && !p.at(token.EOF) {
			u := &ast.ClosureUse{}
			if p.accept(token.Amp) {
				u.ByRef = true
			}
			v := p.expect(token.Variable)
			u.Name = v.Value
			c.Uses = append(c.Uses, u)
			if !p.accept(token.Comma) {
				break
			}
		}
		p.expect(token.RParen)
	}
	p.skipReturnType()
	if arrow {
		p.expect(token.DoubleArrow)
		body := p.parseExpr()
		c.Body = &ast.BlockStmt{
			Stmts:    []ast.Stmt{&ast.ReturnStmt{Result: body, Position: body.Pos()}},
			Position: body.Pos(),
			EndPos:   body.End(),
		}
		c.EndPos = body.End()
		return c
	}
	c.Body = p.parseBlock()
	c.EndPos = c.Body.EndPos
	return c
}
