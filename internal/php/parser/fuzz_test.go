package parser

import (
	"testing"

	"repro/internal/php/ast"
)

// FuzzParse exercises the parser with arbitrary inputs. Run with
// `go test -fuzz=FuzzParse ./internal/php/parser` for continuous fuzzing;
// under plain `go test` the seed corpus below runs as regression tests.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`<?php $x = $_GET['id']; mysql_query("SELECT " . $x);`,
		`<?php function f($a) { return $a . "x"; }`,
		`<?php class C { public $p; function m() { echo $this->p; } }`,
		`<?php foreach ($a as $k => $v): echo $v; endforeach;`,
		`<html><?= $x ?></html>`,
		`<?php "inter${p}olated $var {$arr['k']}";`,
		"<?php $h = <<<EOT\nbody $x\nEOT;\n",
		`<?php ${'dyn'} = 1; $$v = 2;`,
		`<?php try { f(); } catch (A|B $e) {} finally {}`,
		`<?php $f = fn($x) => $x ?? 'd';`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		file, _ := Parse("fuzz.php", src)
		if file == nil {
			t.Fatal("nil file")
		}
		// Walking the result must be safe and spans must be ordered.
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				t.Fatal("nil node")
			}
			if n.End().Offset < n.Pos().Offset {
				t.Fatalf("node %T: end before pos", n)
			}
			return true
		})
	})
}

// FuzzPrintRoundtrip asserts the printer's output always re-parses when the
// input parsed cleanly.
func FuzzPrintRoundtrip(f *testing.F) {
	f.Add(`<?php $x = 1 + 2 * 3;`)
	f.Add(`<?php echo isset($a) ? $a : 'd';`)
	f.Add(`<?php function g($p = array(1,2)) { return $p; }`)
	f.Fuzz(func(t *testing.T, src string) {
		file, errs := Parse("fuzz.php", src)
		if len(errs) > 0 {
			t.Skip("input did not parse cleanly")
		}
		printed := ast.Print(file)
		if _, errs := Parse("printed.php", printed); len(errs) > 0 {
			t.Fatalf("printed output does not parse: %v\ninput: %q\nprinted:\n%s", errs, src, printed)
		}
	})
}
