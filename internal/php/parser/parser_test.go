package parser

import (
	"testing"
	"testing/quick"

	"repro/internal/php/ast"
)

func parseOK(t *testing.T, src string) *ast.File {
	t.Helper()
	f, errs := Parse("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("parse errors: %v", errs)
	}
	return f
}

func firstExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	f := parseOK(t, src)
	for _, s := range f.Stmts {
		if es, ok := s.(*ast.ExprStmt); ok {
			return es.X
		}
	}
	t.Fatalf("no expression statement in %q (stmts=%#v)", src, f.Stmts)
	return nil
}

func TestSimpleAssignment(t *testing.T) {
	e := firstExpr(t, `<?php $x = $_GET['id'];`)
	a, ok := e.(*ast.AssignExpr)
	if !ok {
		t.Fatalf("expr = %T, want AssignExpr", e)
	}
	v, ok := a.Lhs.(*ast.Variable)
	if !ok || v.Name != "x" {
		t.Errorf("lhs = %#v", a.Lhs)
	}
	idx, ok := a.Rhs.(*ast.IndexExpr)
	if !ok {
		t.Fatalf("rhs = %T, want IndexExpr", a.Rhs)
	}
	gv, ok := idx.X.(*ast.Variable)
	if !ok || gv.Name != "_GET" {
		t.Errorf("rhs base = %#v", idx.X)
	}
}

func TestFunctionCall(t *testing.T) {
	e := firstExpr(t, `<?php mysql_query($q, $conn);`)
	c, ok := e.(*ast.CallExpr)
	if !ok {
		t.Fatalf("expr = %T, want CallExpr", e)
	}
	if ast.CalleeName(c) != "mysql_query" {
		t.Errorf("callee = %q", ast.CalleeName(c))
	}
	if len(c.Args) != 2 {
		t.Errorf("args = %d, want 2", len(c.Args))
	}
}

func TestConcatPrecedence(t *testing.T) {
	e := firstExpr(t, `<?php $q = "SELECT " . $a . " FROM t";`)
	a := e.(*ast.AssignExpr)
	b, ok := a.Rhs.(*ast.BinaryExpr)
	if !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
	// Left-assoc: (("SELECT " . $a) . " FROM t")
	if _, ok := b.X.(*ast.BinaryExpr); !ok {
		t.Errorf("concat should be left-associative, X = %T", b.X)
	}
}

func TestCompoundAssign(t *testing.T) {
	e := firstExpr(t, `<?php $q .= $part;`)
	a := e.(*ast.AssignExpr)
	if a.Op.String() != ".=" {
		t.Errorf("op = %v", a.Op)
	}
}

func TestIfElseChain(t *testing.T) {
	f := parseOK(t, `<?php
if ($a) { echo 1; }
elseif ($b) { echo 2; }
else { echo 3; }`)
	s, ok := f.Stmts[0].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt = %T", f.Stmts[0])
	}
	elif, ok := s.Else.(*ast.IfStmt)
	if !ok {
		t.Fatalf("else = %T, want IfStmt (elseif)", s.Else)
	}
	if _, ok := elif.Else.(*ast.BlockStmt); !ok {
		t.Errorf("final else = %T", elif.Else)
	}
}

func TestAlternativeSyntax(t *testing.T) {
	f := parseOK(t, `<?php if ($a): echo 1; elseif ($b): echo 2; else: echo 3; endif;
while ($x): echo $x; endwhile;
foreach ($rows as $r): echo $r; endforeach;`)
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d, want 3", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*ast.IfStmt); !ok {
		t.Errorf("stmt 0 = %T", f.Stmts[0])
	}
	if _, ok := f.Stmts[1].(*ast.WhileStmt); !ok {
		t.Errorf("stmt 1 = %T", f.Stmts[1])
	}
	if _, ok := f.Stmts[2].(*ast.ForeachStmt); !ok {
		t.Errorf("stmt 2 = %T", f.Stmts[2])
	}
}

func TestForeachKeyValue(t *testing.T) {
	f := parseOK(t, `<?php foreach ($arr as $k => $v) { echo $v; }`)
	fe := f.Stmts[0].(*ast.ForeachStmt)
	if fe.Key == nil || fe.Value == nil {
		t.Fatalf("key/value missing: %+v", fe)
	}
	if k := fe.Key.(*ast.Variable); k.Name != "k" {
		t.Errorf("key = %+v", fe.Key)
	}
}

func TestForLoop(t *testing.T) {
	f := parseOK(t, `<?php for ($i = 0; $i < 10; $i++) { echo $i; }`)
	fs := f.Stmts[0].(*ast.ForStmt)
	if len(fs.Init) != 1 || len(fs.Cond) != 1 || len(fs.Post) != 1 {
		t.Errorf("for parts: %d %d %d", len(fs.Init), len(fs.Cond), len(fs.Post))
	}
}

func TestSwitch(t *testing.T) {
	f := parseOK(t, `<?php
switch ($x) {
  case 1: echo "a"; break;
  case 2:
  case 3: echo "b"; break;
  default: echo "c";
}`)
	sw := f.Stmts[0].(*ast.SwitchStmt)
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(sw.Cases))
	}
	if sw.Cases[3].Cond != nil {
		t.Errorf("default clause has cond")
	}
}

func TestFunctionDecl(t *testing.T) {
	f := parseOK(t, `<?php
function sanitize($input, $mode = 'html', &$out = null) {
  return htmlentities($input);
}`)
	d, ok := f.Funcs["sanitize"]
	if !ok {
		t.Fatal("function not indexed")
	}
	if len(d.Params) != 3 {
		t.Fatalf("params = %d", len(d.Params))
	}
	if d.Params[0].Name != "input" {
		t.Errorf("param 0 = %+v", d.Params[0])
	}
	if d.Params[1].Default == nil {
		t.Errorf("param 1 should have default")
	}
	if !d.Params[2].ByRef {
		t.Errorf("param 2 should be by-ref")
	}
}

func TestTypedFunction(t *testing.T) {
	f := parseOK(t, `<?php function f(int $a, ?string $b, array $c): ?string { return $b; }`)
	d := f.Funcs["f"]
	if d == nil || len(d.Params) != 3 {
		t.Fatalf("decl = %+v", d)
	}
	if d.Params[0].TypeHint != "int" {
		t.Errorf("hint = %q", d.Params[0].TypeHint)
	}
}

func TestClassDecl(t *testing.T) {
	f := parseOK(t, `<?php
class UserDao extends BaseDao implements Countable {
  public $conn;
  private static $cache = array();
  const LIMIT = 10;
  public function find($id) {
    return mysql_query("SELECT * FROM users WHERE id=" . $id, $this->conn);
  }
  public static function make() { return new UserDao(); }
}`)
	c, ok := f.Classes["userdao"]
	if !ok {
		t.Fatal("class not indexed")
	}
	if c.Parent != "BaseDao" {
		t.Errorf("parent = %q", c.Parent)
	}
	if len(c.Methods) != 2 {
		t.Fatalf("methods = %d", len(c.Methods))
	}
	if len(c.Props) != 2 {
		t.Errorf("props = %d", len(c.Props))
	}
	if len(c.Consts) != 1 {
		t.Errorf("consts = %d", len(c.Consts))
	}
	if _, ok := f.Funcs["userdao::find"]; !ok {
		t.Error("method not indexed as Class::method")
	}
	if !c.Methods[1].IsStatic {
		t.Error("make should be static")
	}
}

func TestMethodCallChain(t *testing.T) {
	e := firstExpr(t, `<?php $wpdb->query($sql)->fetch();`)
	m, ok := e.(*ast.MethodCallExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if m.Name != "fetch" {
		t.Errorf("outer = %q", m.Name)
	}
	inner, ok := m.Recv.(*ast.MethodCallExpr)
	if !ok || inner.Name != "query" {
		t.Fatalf("inner = %#v", m.Recv)
	}
	recv, ok := inner.Recv.(*ast.Variable)
	if !ok || recv.Name != "wpdb" {
		t.Errorf("recv = %#v", inner.Recv)
	}
}

func TestStaticCall(t *testing.T) {
	e := firstExpr(t, `<?php DB::query($sql);`)
	sc, ok := e.(*ast.StaticCallExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if sc.Class != "DB" || sc.Name != "query" {
		t.Errorf("call = %+v", sc)
	}
}

func TestNewExpr(t *testing.T) {
	e := firstExpr(t, `<?php $m = new MongoClient("mongodb://localhost");`)
	a := e.(*ast.AssignExpr)
	n, ok := a.Rhs.(*ast.NewExpr)
	if !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
	if n.Class != "MongoClient" || len(n.Args) != 1 {
		t.Errorf("new = %+v", n)
	}
}

func TestArrayLiterals(t *testing.T) {
	e := firstExpr(t, `<?php $a = array('x' => 1, 2, 'y' => $z);`)
	al := e.(*ast.AssignExpr).Rhs.(*ast.ArrayLit)
	if len(al.Items) != 3 {
		t.Fatalf("items = %d", len(al.Items))
	}
	if al.Items[0].Key == nil || al.Items[1].Key != nil {
		t.Errorf("keys wrong: %+v", al.Items)
	}
	e2 := firstExpr(t, `<?php $b = [1, 2, 3];`)
	al2 := e2.(*ast.AssignExpr).Rhs.(*ast.ArrayLit)
	if len(al2.Items) != 3 {
		t.Errorf("short array items = %d", len(al2.Items))
	}
}

func TestTernaryAndCoalesce(t *testing.T) {
	e := firstExpr(t, `<?php $x = isset($_GET['a']) ? $_GET['a'] : 'def';`)
	a := e.(*ast.AssignExpr)
	te, ok := a.Rhs.(*ast.TernaryExpr)
	if !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
	if _, ok := te.Cond.(*ast.IssetExpr); !ok {
		t.Errorf("cond = %T", te.Cond)
	}
	e2 := firstExpr(t, `<?php $y = $_POST['b'] ?? '';`)
	if _, ok := e2.(*ast.AssignExpr).Rhs.(*ast.BinaryExpr); !ok {
		t.Errorf("coalesce rhs = %T", e2.(*ast.AssignExpr).Rhs)
	}
	// Short ternary ?: form.
	e3 := firstExpr(t, `<?php $z = $a ?: 'd';`)
	t3 := e3.(*ast.AssignExpr).Rhs.(*ast.TernaryExpr)
	if t3.A != nil {
		t.Errorf("short ternary A should be nil")
	}
}

func TestInterpolatedString(t *testing.T) {
	e := firstExpr(t, `<?php $q = "SELECT * FROM users WHERE id=$id";`)
	is, ok := e.(*ast.AssignExpr).Rhs.(*ast.InterpString)
	if !ok {
		t.Fatalf("rhs = %T", e.(*ast.AssignExpr).Rhs)
	}
	foundVar := false
	for _, p := range is.Parts {
		if v, ok := p.(*ast.Variable); ok && v.Name == "id" {
			foundVar = true
		}
	}
	if !foundVar {
		t.Errorf("no $id var in parts: %#v", is.Parts)
	}
}

func TestGlobalAndStatic(t *testing.T) {
	f := parseOK(t, `<?php function g() { global $db, $cfg; static $n = 0; }`)
	body := f.Funcs["g"].Body.Stmts
	gs, ok := body[0].(*ast.GlobalStmt)
	if !ok || len(gs.Names) != 2 {
		t.Fatalf("global = %#v", body[0])
	}
	sv, ok := body[1].(*ast.StaticVarStmt)
	if !ok || len(sv.Names) != 1 || sv.Inits[0] == nil {
		t.Fatalf("static = %#v", body[1])
	}
}

func TestTryCatchFinally(t *testing.T) {
	f := parseOK(t, `<?php
try { risky(); }
catch (PDOException | RuntimeException $e) { log_err($e); }
finally { cleanup(); }`)
	ts := f.Stmts[0].(*ast.TryStmt)
	if len(ts.Catches) != 1 {
		t.Fatalf("catches = %d", len(ts.Catches))
	}
	if len(ts.Catches[0].Types) != 2 || ts.Catches[0].Var != "e" {
		t.Errorf("catch = %+v", ts.Catches[0])
	}
	if ts.Finally == nil {
		t.Error("finally missing")
	}
}

func TestIncludes(t *testing.T) {
	f := parseOK(t, `<?php
include 'header.php';
require_once("config.php");`)
	i1 := f.Stmts[0].(*ast.IncludeStmt)
	if i1.Require || i1.Once {
		t.Errorf("include flags = %+v", i1)
	}
	i2 := f.Stmts[1].(*ast.IncludeStmt)
	if !i2.Require || !i2.Once {
		t.Errorf("require_once flags = %+v", i2)
	}
}

func TestClosure(t *testing.T) {
	e := firstExpr(t, `<?php $f = function ($x) use ($db, &$log) { return $db->q($x); };`)
	c, ok := e.(*ast.AssignExpr).Rhs.(*ast.ClosureExpr)
	if !ok {
		t.Fatalf("rhs = %T", e.(*ast.AssignExpr).Rhs)
	}
	if len(c.Params) != 1 || len(c.Uses) != 2 {
		t.Fatalf("closure = %+v", c)
	}
	if !c.Uses[1].ByRef {
		t.Errorf("use &$log should be by-ref")
	}
}

func TestArrowFn(t *testing.T) {
	e := firstExpr(t, `<?php $f = fn($x) => $x + 1;`)
	c, ok := e.(*ast.AssignExpr).Rhs.(*ast.ClosureExpr)
	if !ok || !c.IsArrow {
		t.Fatalf("rhs = %#v", e.(*ast.AssignExpr).Rhs)
	}
	if len(c.Body.Stmts) != 1 {
		t.Fatalf("arrow body = %+v", c.Body)
	}
	if _, ok := c.Body.Stmts[0].(*ast.ReturnStmt); !ok {
		t.Errorf("arrow body stmt = %T", c.Body.Stmts[0])
	}
}

func TestListDestructuring(t *testing.T) {
	e := firstExpr(t, `<?php list($a, , $b) = explode(',', $s);`)
	a := e.(*ast.AssignExpr)
	l, ok := a.Lhs.(*ast.ListExpr)
	if !ok {
		t.Fatalf("lhs = %T", a.Lhs)
	}
	if len(l.Items) != 3 || l.Items[1] != nil {
		t.Errorf("list items = %#v", l.Items)
	}
}

func TestExitAndPrint(t *testing.T) {
	f := parseOK(t, `<?php print "hi"; exit(1); die();`)
	if len(f.Stmts) != 3 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*ast.ExprStmt).X.(*ast.PrintExpr); !ok {
		t.Errorf("stmt 0 = %T", f.Stmts[0].(*ast.ExprStmt).X)
	}
	if _, ok := f.Stmts[1].(*ast.ExprStmt).X.(*ast.ExitExpr); !ok {
		t.Errorf("stmt 1 = %T", f.Stmts[1].(*ast.ExprStmt).X)
	}
}

func TestMixedHTMLPHP(t *testing.T) {
	f := parseOK(t, `<html><?php if ($ok) { ?><b>yes</b><?php } else { ?>no<?php } ?></html>`)
	if len(f.Stmts) < 2 {
		t.Fatalf("stmts = %d: %#v", len(f.Stmts), f.Stmts)
	}
	if _, ok := f.Stmts[0].(*ast.InlineHTMLStmt); !ok {
		t.Errorf("stmt 0 = %T", f.Stmts[0])
	}
	ifs, ok := f.Stmts[1].(*ast.IfStmt)
	if !ok {
		t.Fatalf("stmt 1 = %T", f.Stmts[1])
	}
	foundHTML := false
	for _, s := range ifs.Then.Stmts {
		if _, ok := s.(*ast.InlineHTMLStmt); ok {
			foundHTML = true
		}
	}
	if !foundHTML {
		t.Error("inline HTML missing inside if body")
	}
}

func TestErrorRecovery(t *testing.T) {
	f, errs := Parse("bad.php", `<?php
$a = ;
$b = 2;
echo $b;`)
	if len(errs) == 0 {
		t.Fatal("want parse errors")
	}
	// The good statements after the error must survive.
	found := false
	for _, s := range f.Stmts {
		if es, ok := s.(*ast.ExprStmt); ok {
			if a, ok := es.X.(*ast.AssignExpr); ok {
				if v, ok := a.Lhs.(*ast.Variable); ok && v.Name == "b" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("statement after error not recovered")
	}
}

func TestNamespaceAndUseSkipped(t *testing.T) {
	f := parseOK(t, `<?php
namespace App\Models;
use App\Db\Connection;
$x = 1;`)
	found := false
	for _, s := range f.Stmts {
		if _, ok := s.(*ast.ExprStmt); ok {
			found = true
		}
	}
	if !found {
		t.Error("statement after namespace/use lost")
	}
}

func TestVariableVariableExpr(t *testing.T) {
	e := firstExpr(t, `<?php $$name = 1;`)
	a := e.(*ast.AssignExpr)
	if _, ok := a.Lhs.(*ast.VarVar); !ok {
		t.Errorf("lhs = %T", a.Lhs)
	}
}

func TestLogicalKeywordOps(t *testing.T) {
	e := firstExpr(t, `<?php $ok = $a and $b;`)
	// "and" binds looser than "=", so this parses as ($ok = $a) and $b.
	b, ok := e.(*ast.BinaryExpr)
	if !ok {
		// Our parser treats assignment as lowest; accept AssignExpr whose
		// RHS contains the and.
		if _, ok := e.(*ast.AssignExpr); !ok {
			t.Fatalf("expr = %T", e)
		}
		return
	}
	if _, ok := b.X.(*ast.AssignExpr); !ok {
		t.Errorf("X = %T", b.X)
	}
}

func TestInstanceof(t *testing.T) {
	e := firstExpr(t, `<?php $ok = $e instanceof PDOException;`)
	a := e.(*ast.AssignExpr)
	io, ok := a.Rhs.(*ast.InstanceofExpr)
	if !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
	if io.Class != "PDOException" {
		t.Errorf("class = %q", io.Class)
	}
}

func TestEchoMultipleArgs(t *testing.T) {
	f := parseOK(t, `<?php echo "a", $b, "c";`)
	es := f.Stmts[0].(*ast.EchoStmt)
	if len(es.Args) != 3 {
		t.Errorf("args = %d", len(es.Args))
	}
}

func TestReferenceAssign(t *testing.T) {
	e := firstExpr(t, `<?php $a =& $b;`)
	a := e.(*ast.AssignExpr)
	if !a.ByRef {
		t.Error("ByRef not set")
	}
}

func TestWalkCoversAllNodes(t *testing.T) {
	src := `<?php
function f($a) { return $a . "x"; }
class C { public $p; function m() { echo $this->p; } }
$x = $_GET['q'];
if ($x) { echo f($x); } else { print 'n'; }
foreach ([1,2] as $k => $v) { $s .= $v; }
try { g(); } catch (E $e) {} finally {}
$c = function() use ($x) { return $x; };
switch ($x) { case 1: break; default: continue; }
while ($x--) { $y = (int)$x; }
do { $z = @h(); } while (false);
echo isset($x) ? "$x[0]" : ($x ?? 'd');
`
	f, _ := Parse("walk.php", src)
	count := 0
	ast.Inspect(f, func(n ast.Node) bool {
		count++
		if n == nil {
			t.Error("nil node visited")
		}
		return true
	})
	if count < 50 {
		t.Errorf("walk visited only %d nodes", count)
	}
}

// Property: the parser never panics and always returns a file, whatever the
// input.
func TestParserTotalQuick(t *testing.T) {
	f := func(s string) bool {
		file, _ := Parse("q.php", "<?php "+s)
		return file != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: every node's End position is never before its Pos.
func TestNodeSpansQuick(t *testing.T) {
	srcs := []string{
		`<?php $a = f($b . "$c");`,
		`<?php if ($x) { echo $x; }`,
		`<?php foreach ($a as $b) $c[] = $b;`,
		`<?php class K { function m($p) { return $p; } }`,
	}
	for _, src := range srcs {
		f, errs := Parse("span.php", src)
		if len(errs) > 0 {
			t.Fatalf("%q: %v", src, errs)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if n.End().Offset < n.Pos().Offset {
				t.Errorf("%q: node %T end %v before pos %v", src, n, n.End(), n.Pos())
			}
			return true
		})
	}
}
