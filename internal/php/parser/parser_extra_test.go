package parser

import (
	"testing"

	"repro/internal/php/ast"
)

// Additional grammar coverage: the constructs that show up in real web apps
// beyond the core subset.

func TestDynamicMethodCall(t *testing.T) {
	e := firstExpr(t, `<?php $obj->$method($arg);`)
	m, ok := e.(*ast.MethodCallExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if m.Name != "" || m.DynName == nil {
		t.Errorf("dynamic call = %+v", m)
	}
}

func TestDynamicPropAccess(t *testing.T) {
	e := firstExpr(t, `<?php $obj->{$field . "_id"};`)
	p, ok := e.(*ast.PropExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if p.Dyn == nil {
		t.Errorf("dynamic prop = %+v", p)
	}
}

func TestAnonymousClass(t *testing.T) {
	f := parseOK(t, `<?php $h = new class { public function handle() { return 1; } };`)
	if len(f.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestStaticKeywordAccess(t *testing.T) {
	f := parseOK(t, `<?php
class A {
  public static $inst;
  static function get() { return static::$inst; }
  function kind() { return static::class; }
}`)
	c := f.Classes["a"]
	if c == nil || len(c.Methods) != 2 {
		t.Fatalf("class = %+v", c)
	}
}

func TestClassConstantAccess(t *testing.T) {
	e := firstExpr(t, `<?php $x = Config::LIMIT;`)
	a := e.(*ast.AssignExpr)
	cc, ok := a.Rhs.(*ast.ClassConstExpr)
	if !ok || cc.Class != "Config" || cc.Name != "LIMIT" {
		t.Fatalf("rhs = %#v", a.Rhs)
	}
}

func TestShortArrayDestructuringInForeach(t *testing.T) {
	f := parseOK(t, `<?php foreach ($pairs as $pair) { list($k, $v) = $pair; }`)
	fe := f.Stmts[0].(*ast.ForeachStmt)
	if len(fe.Body.Stmts) != 1 {
		t.Fatalf("body = %+v", fe.Body)
	}
}

func TestNestedClosures(t *testing.T) {
	e := firstExpr(t, `<?php $f = function ($a) { return function ($b) use ($a) { return $a . $b; }; };`)
	outer := e.(*ast.AssignExpr).Rhs.(*ast.ClosureExpr)
	ret := outer.Body.Stmts[0].(*ast.ReturnStmt)
	inner, ok := ret.Result.(*ast.ClosureExpr)
	if !ok || len(inner.Uses) != 1 {
		t.Fatalf("inner = %#v", ret.Result)
	}
}

func TestChainedTernary(t *testing.T) {
	e := firstExpr(t, `<?php $x = $a ? 1 : ($b ? 2 : 3);`)
	tern := e.(*ast.AssignExpr).Rhs.(*ast.TernaryExpr)
	if _, ok := tern.B.(*ast.TernaryExpr); !ok {
		t.Errorf("nested ternary = %T", tern.B)
	}
}

func TestArrayAppend(t *testing.T) {
	e := firstExpr(t, `<?php $rows[] = $row;`)
	a := e.(*ast.AssignExpr)
	idx, ok := a.Lhs.(*ast.IndexExpr)
	if !ok || idx.Index != nil {
		t.Fatalf("lhs = %#v", a.Lhs)
	}
}

func TestStringOffsetBraces(t *testing.T) {
	e := firstExpr(t, `<?php $c = $s{0};`)
	a := e.(*ast.AssignExpr)
	if _, ok := a.Rhs.(*ast.IndexExpr); !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
}

func TestExitWithoutParens(t *testing.T) {
	f := parseOK(t, `<?php if ($bad) exit; echo "ok";`)
	ifs := f.Stmts[0].(*ast.IfStmt)
	es := ifs.Then.Stmts[0].(*ast.ExprStmt)
	if _, ok := es.X.(*ast.ExitExpr); !ok {
		t.Fatalf("then = %T", es.X)
	}
}

func TestMultipleStatementsPerLine(t *testing.T) {
	f := parseOK(t, `<?php $a = 1; $b = 2; $c = $a + $b; echo $c;`)
	if len(f.Stmts) != 4 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestKeywordsAsMethodNames(t *testing.T) {
	f := parseOK(t, `<?php
class Q {
  function list() { return array(); }
  function print() { return 1; }
}
$q->list();`)
	c := f.Classes["q"]
	if c == nil || len(c.Methods) != 2 {
		t.Fatalf("class = %+v", c)
	}
}

func TestNamespacedCalls(t *testing.T) {
	// Namespaced names flatten to their last segment.
	e := firstExpr(t, `<?php \App\Db\query($sql);`)
	c, ok := e.(*ast.CallExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if ast.CalleeName(c) != "query" {
		t.Errorf("callee = %q", ast.CalleeName(c))
	}
}

func TestConcatWithNumbers(t *testing.T) {
	e := firstExpr(t, `<?php $s = "v" . 1 . 2.5 . true;`)
	if _, ok := e.(*ast.AssignExpr).Rhs.(*ast.BinaryExpr); !ok {
		t.Fatalf("rhs = %T", e.(*ast.AssignExpr).Rhs)
	}
}

func TestEmptyFunctionBody(t *testing.T) {
	f := parseOK(t, `<?php function noop() {}`)
	if f.Funcs["noop"].Body == nil {
		t.Fatal("body missing")
	}
}

func TestInterfaceMethodsNoBody(t *testing.T) {
	f := parseOK(t, `<?php
interface Store {
  public function get($k);
  public function put($k, $v);
}`)
	c := f.Classes["store"]
	if c == nil || !c.IsInterface || len(c.Methods) != 2 {
		t.Fatalf("interface = %+v", c)
	}
	if c.Methods[0].Body != nil {
		t.Error("interface method must have nil body")
	}
}

func TestAbstractClass(t *testing.T) {
	f := parseOK(t, `<?php
abstract class Base {
  abstract public function run();
  public function helper() { return 1; }
}`)
	c := f.Classes["base"]
	if c == nil || len(c.Methods) != 2 {
		t.Fatalf("class = %+v", c)
	}
}

func TestCastsChained(t *testing.T) {
	e := firstExpr(t, `<?php $n = (int)(string)$_GET['x'];`)
	outer, ok := e.(*ast.AssignExpr).Rhs.(*ast.CastExpr)
	if !ok {
		t.Fatalf("rhs = %T", e.(*ast.AssignExpr).Rhs)
	}
	if _, ok := outer.X.(*ast.CastExpr); !ok {
		t.Errorf("inner = %T", outer.X)
	}
}

func TestSuppressedAssignment(t *testing.T) {
	e := firstExpr(t, `<?php $v = @$arr['maybe'];`)
	a := e.(*ast.AssignExpr)
	u, ok := a.Rhs.(*ast.UnaryExpr)
	if !ok {
		t.Fatalf("rhs = %T", a.Rhs)
	}
	if _, ok := u.X.(*ast.IndexExpr); !ok {
		t.Errorf("suppressed expr = %T", u.X)
	}
}

func TestNestedFunctionDeclarations(t *testing.T) {
	f := parseOK(t, `<?php
function outer() {
  function inner() { return 1; }
  return inner();
}`)
	if f.Funcs["outer"] == nil || f.Funcs["inner"] == nil {
		t.Error("nested declarations must be indexed")
	}
}

func TestConditionalFunctionDeclaration(t *testing.T) {
	f := parseOK(t, `<?php
if (!function_exists('helper')) {
  function helper($x) { return $x; }
}`)
	if f.Funcs["helper"] == nil {
		t.Error("conditionally declared function must be indexed")
	}
}

func TestHTMLOnlyFile(t *testing.T) {
	f := parseOK(t, `<html><body>No PHP here at all.</body></html>`)
	if len(f.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
	if _, ok := f.Stmts[0].(*ast.InlineHTMLStmt); !ok {
		t.Errorf("stmt = %T", f.Stmts[0])
	}
}

func TestRepeatedOpenCloseTags(t *testing.T) {
	f := parseOK(t, `<?php $a = 1; ?>text<?php $b = 2; ?>more<?= $a + $b ?>end`)
	var exprs, html int
	for _, s := range f.Stmts {
		switch s.(type) {
		case *ast.ExprStmt, *ast.EchoStmt:
			exprs++
		case *ast.InlineHTMLStmt:
			html++
		}
	}
	if exprs != 3 || html != 3 {
		t.Errorf("exprs = %d html = %d", exprs, html)
	}
}

func TestDeeplyNestedExpressions(t *testing.T) {
	src := `<?php $x = `
	for i := 0; i < 100; i++ {
		src += "("
	}
	src += "1"
	for i := 0; i < 100; i++ {
		src += ")"
	}
	src += ";"
	f, errs := Parse("deep.php", src)
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(f.Stmts) != 1 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestPowRightAssociative(t *testing.T) {
	e := firstExpr(t, `<?php $x = 2 ** 3 ** 2;`)
	b := e.(*ast.AssignExpr).Rhs.(*ast.BinaryExpr)
	// Right associative: 2 ** (3 ** 2).
	if _, ok := b.Y.(*ast.BinaryExpr); !ok {
		t.Errorf("pow associativity wrong: Y = %T", b.Y)
	}
}

func TestByRefArgument(t *testing.T) {
	e := firstExpr(t, `<?php sort(&$arr);`)
	c := e.(*ast.CallExpr)
	if len(c.ArgByRef) != 1 || !c.ArgByRef[0] {
		t.Errorf("by-ref arg = %v", c.ArgByRef)
	}
}

func TestSpreadArgument(t *testing.T) {
	e := firstExpr(t, `<?php f(...$args);`)
	c := e.(*ast.CallExpr)
	if len(c.Args) != 1 {
		t.Errorf("args = %d", len(c.Args))
	}
}

func TestNamedArguments(t *testing.T) {
	e := firstExpr(t, `<?php htmlspecialchars($s, flags: ENT_QUOTES);`)
	c := e.(*ast.CallExpr)
	if len(c.Args) != 2 {
		t.Errorf("args = %d", len(c.Args))
	}
}

func TestTraitDeclaration(t *testing.T) {
	f := parseOK(t, `<?php
trait Loggable {
  public $log = array();
  function record($msg) { $this->log[] = $msg; }
}
class Svc { use Loggable; }`)
	tr := f.Classes["loggable"]
	if tr == nil || len(tr.Methods) != 1 {
		t.Fatalf("trait = %+v", tr)
	}
	if _, ok := f.Funcs["loggable::record"]; !ok {
		t.Error("trait method not indexed")
	}
}

func TestTraitAsVariableNameStillWorks(t *testing.T) {
	// "trait" only acts as a keyword in declaration position.
	f := parseOK(t, `<?php $x = trait_exists('T'); trait_stuff();`)
	if len(f.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(f.Stmts))
	}
}

func TestMatchExpression(t *testing.T) {
	e := firstExpr(t, `<?php $out = match ($mode) {
  'a', 'b' => handle_ab($x),
  'c' => handle_c(),
  default => fallback(),
};`)
	m, ok := e.(*ast.AssignExpr).Rhs.(*ast.MatchExpr)
	if !ok {
		t.Fatalf("rhs = %T", e.(*ast.AssignExpr).Rhs)
	}
	if len(m.Arms) != 3 {
		t.Fatalf("arms = %d", len(m.Arms))
	}
	if len(m.Arms[0].Conds) != 2 {
		t.Errorf("arm 0 conds = %d", len(m.Arms[0].Conds))
	}
	if m.Arms[2].Conds != nil {
		t.Errorf("default arm must have nil conds")
	}
}

func TestMatchAsFunctionNameStillWorks(t *testing.T) {
	// Backtracking: match(...) without a brace body is an ordinary call.
	e := firstExpr(t, `<?php match($pattern, $subject);`)
	c, ok := e.(*ast.CallExpr)
	if !ok {
		t.Fatalf("expr = %T", e)
	}
	if ast.CalleeName(c) != "match" || len(c.Args) != 2 {
		t.Errorf("call = %v args=%d", ast.CalleeName(c), len(c.Args))
	}
}
