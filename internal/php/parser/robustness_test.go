package parser

import (
	"math/rand"
	"testing"

	"repro/internal/corpus"
)

// TestParserSurvivesMutations deletes, duplicates and swaps random byte
// ranges of realistic corpus files and asserts the parser never panics and
// always produces a file object — the tolerance real-world WAP needs when
// pointed at arbitrary trees.
func TestParserSurvivesMutations(t *testing.T) {
	apps := corpus.WebAppSuite(1)
	var sources []string
	for _, app := range apps[:6] {
		for _, src := range app.Files {
			sources = append(sources, src)
		}
	}
	rng := rand.New(rand.NewSource(42))
	mutations := 0
	for _, src := range sources {
		for k := 0; k < 8; k++ {
			mutated := mutate(src, rng)
			f, _ := Parse("mut.php", mutated)
			if f == nil {
				t.Fatalf("nil file for mutation of %q", src[:40])
			}
			mutations++
		}
	}
	if mutations < 100 {
		t.Fatalf("too few mutations exercised: %d", mutations)
	}
}

func mutate(src string, rng *rand.Rand) string {
	if len(src) < 4 {
		return src
	}
	switch rng.Intn(4) {
	case 0: // delete a range
		i := rng.Intn(len(src))
		j := i + rng.Intn(len(src)-i)
		return src[:i] + src[j:]
	case 1: // duplicate a range
		i := rng.Intn(len(src))
		j := i + rng.Intn(len(src)-i)
		return src[:j] + src[i:j] + src[j:]
	case 2: // flip random bytes
		b := []byte(src)
		for n := 0; n < 1+rng.Intn(5); n++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
		return string(b)
	default: // truncate
		return src[:rng.Intn(len(src))]
	}
}

// TestParserSurvivesPathologicalInputs feeds crafted worst cases.
func TestParserSurvivesPathologicalInputs(t *testing.T) {
	cases := []string{
		"<?php",
		"<?php ?",
		"<?php <?php <?php",
		"<?php ((((((((",
		"<?php }}}}}}}}",
		"<?php $",
		"<?php $$$$$",
		"<?php \"unterminated",
		"<?php 'unterminated",
		"<?php <<<EOT\nnever closed",
		"<?php /* never closed",
		"<?php class { }",
		"<?php function () { }",
		"<?php if while for foreach",
		"<?php -> :: => ..",
		"<?php \x00\x01\x02",
		"<?php ?>\x00<?php",
		"<?php echo;",
		"<?php case 1: break;",
		"<?php use ;",
	}
	for _, src := range cases {
		f, _ := Parse("path.php", src)
		if f == nil {
			t.Errorf("nil file for %q", src)
		}
	}
}
