package parser

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/corpus"
)

// TestParserSurvivesMutations deletes, duplicates and swaps random byte
// ranges of realistic corpus files and asserts the parser never panics and
// always produces a file object — the tolerance real-world WAP needs when
// pointed at arbitrary trees.
func TestParserSurvivesMutations(t *testing.T) {
	apps := corpus.WebAppSuite(1)
	var sources []string
	for _, app := range apps[:6] {
		for _, src := range app.Files {
			sources = append(sources, src)
		}
	}
	rng := rand.New(rand.NewSource(42))
	mutations := 0
	for _, src := range sources {
		for k := 0; k < 8; k++ {
			mutated := mutate(src, rng)
			f, _ := Parse("mut.php", mutated)
			if f == nil {
				t.Fatalf("nil file for mutation of %q", src[:40])
			}
			mutations++
		}
	}
	if mutations < 100 {
		t.Fatalf("too few mutations exercised: %d", mutations)
	}
}

func mutate(src string, rng *rand.Rand) string {
	if len(src) < 4 {
		return src
	}
	switch rng.Intn(4) {
	case 0: // delete a range
		i := rng.Intn(len(src))
		j := i + rng.Intn(len(src)-i)
		return src[:i] + src[j:]
	case 1: // duplicate a range
		i := rng.Intn(len(src))
		j := i + rng.Intn(len(src)-i)
		return src[:j] + src[i:j] + src[j:]
	case 2: // flip random bytes
		b := []byte(src)
		for n := 0; n < 1+rng.Intn(5); n++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
		}
		return string(b)
	default: // truncate
		return src[:rng.Intn(len(src))]
	}
}

// TestParserSurvivesPathologicalInputs feeds crafted worst cases.
func TestParserSurvivesPathologicalInputs(t *testing.T) {
	cases := []string{
		"<?php",
		"<?php ?",
		"<?php <?php <?php",
		"<?php ((((((((",
		"<?php }}}}}}}}",
		"<?php $",
		"<?php $$$$$",
		"<?php \"unterminated",
		"<?php 'unterminated",
		"<?php <<<EOT\nnever closed",
		"<?php /* never closed",
		"<?php class { }",
		"<?php function () { }",
		"<?php if while for foreach",
		"<?php -> :: => ..",
		"<?php \x00\x01\x02",
		"<?php ?>\x00<?php",
		"<?php echo;",
		"<?php case 1: break;",
		"<?php use ;",
	}
	for _, src := range cases {
		f, _ := Parse("path.php", src)
		if f == nil {
			t.Errorf("nil file for %q", src)
		}
	}
}

// degradedError returns the Degraded parse error, if any.
func degradedError(errs []*Error) *Error {
	for _, e := range errs {
		if e.Degraded {
			return e
		}
	}
	return nil
}

// TestParserBoundsDeepNesting feeds inputs nested far beyond the recursion
// bound and asserts the parser terminates with a non-nil file and exactly
// one Degraded error — instead of overflowing the goroutine stack. Each
// shape exercises a different self-recursive production.
func TestParserBoundsDeepNesting(t *testing.T) {
	const n = 100_000
	cases := map[string]string{
		"parens":       "<?php echo " + strings.Repeat("(", n) + "1" + strings.Repeat(")", n) + ";",
		"assign-chain": "<?php " + strings.Repeat("$a = ", n) + "1;",
		"ternary":      "<?php echo " + strings.Repeat("1 ? 2 : ", n) + "3;",
		"binary":       "<?php echo " + strings.Repeat("1 + ", n) + "1;",
		"unary":        "<?php echo " + strings.Repeat("!", n) + "$x;",
		"concat":       "<?php echo " + strings.Repeat("$a . ", n) + "$b;",
		"nested-if":    "<?php " + strings.Repeat("if ($x) { ", n) + "echo 1;" + strings.Repeat(" }", n),
		"nested-array": "<?php $a = " + strings.Repeat("array(", n) + "1" + strings.Repeat(")", n) + ";",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			f, errs := Parse("deep.php", src)
			if f == nil {
				t.Fatal("nil file for deeply nested input")
			}
			// Left-associative chains (binary/concat) iterate rather than
			// recurse per operand, so they may legitimately stay within the
			// bound; shapes that recurse per level must report degradation.
			d := degradedError(errs)
			switch name {
			case "binary", "concat", "assign-chain", "ternary":
				// Recursion pattern is an implementation detail for chains;
				// only termination and a non-nil file are required.
			default:
				if d == nil {
					t.Fatalf("no Degraded error recorded for %s", name)
				}
			}
			if d != nil {
				nDeg := 0
				for _, e := range errs {
					if e.Degraded {
						nDeg++
					}
				}
				if nDeg != 1 {
					t.Errorf("Degraded errors = %d, want exactly 1", nDeg)
				}
				if !strings.Contains(d.Msg, "nesting exceeds") {
					t.Errorf("degraded message = %q", d.Msg)
				}
			}
		})
	}
}

// TestParserShallowNestingNotDegraded pins the bound high enough that
// realistic code never trips it.
func TestParserShallowNestingNotDegraded(t *testing.T) {
	src := "<?php echo " + strings.Repeat("(", 40) + "$x" + strings.Repeat(")", 40) + ";"
	f, errs := Parse("shallow.php", src)
	if f == nil {
		t.Fatal("nil file")
	}
	if d := degradedError(errs); d != nil {
		t.Errorf("40-deep nesting must not degrade: %v", d)
	}
}
