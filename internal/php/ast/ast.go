// Package ast declares the abstract syntax tree for the PHP subset and the
// visitor machinery used by the detectors (the paper's "tree walkers").
package ast

import (
	"repro/internal/php/token"
)

// Node is the interface implemented by every AST node.
type Node interface {
	// Pos returns the position of the first token of the node.
	Pos() token.Position
	// End returns the position one past the node's last token.
	End() token.Position
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// ---------------------------------------------------------------------------
// File
// ---------------------------------------------------------------------------

// File is a parsed PHP source file.
type File struct {
	Name  string
	Stmts []Stmt
	// Funcs indexes every function declaration in the file (including
	// methods, keyed by lower-case name; methods as Class::method).
	Funcs map[string]*FunctionDecl
	// Classes indexes class declarations by lower-case name.
	Classes map[string]*ClassDecl
}

// Pos implements Node.
func (f *File) Pos() token.Position {
	if len(f.Stmts) > 0 {
		return f.Stmts[0].Pos()
	}
	return token.Position{File: f.Name, Line: 1, Column: 1}
}

// End implements Node.
func (f *File) End() token.Position {
	if n := len(f.Stmts); n > 0 {
		return f.Stmts[n-1].End()
	}
	return token.Position{File: f.Name, Line: 1, Column: 1}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// InlineHTMLStmt is raw output text between PHP regions.
type InlineHTMLStmt struct {
	Text     string
	Position token.Position
	EndPos   token.Position
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	X Expr
}

// EchoStmt is `echo e1, e2, ...;` (print is parsed as an expression).
type EchoStmt struct {
	Args     []Expr
	Position token.Position
}

// BlockStmt is `{ ... }`.
type BlockStmt struct {
	Stmts    []Stmt
	Position token.Position
	EndPos   token.Position
}

// IfStmt is if/elseif/else. Elifs are nested in Else as IfStmts.
type IfStmt struct {
	Cond     Expr
	Then     *BlockStmt
	Else     Stmt // *BlockStmt, *IfStmt, or nil
	Position token.Position
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond     Expr
	Body     *BlockStmt
	Position token.Position
}

// DoWhileStmt is a do { } while (cond); loop.
type DoWhileStmt struct {
	Body     *BlockStmt
	Cond     Expr
	Position token.Position
}

// ForStmt is a C-style for loop.
type ForStmt struct {
	Init     []Expr
	Cond     []Expr
	Post     []Expr
	Body     *BlockStmt
	Position token.Position
}

// ForeachStmt is `foreach (x as $k => $v) body`.
type ForeachStmt struct {
	Subject  Expr
	Key      Expr // nil when no key
	Value    Expr
	ByRef    bool
	Body     *BlockStmt
	Position token.Position
}

// SwitchStmt is a switch with cases.
type SwitchStmt struct {
	Subject  Expr
	Cases    []*CaseClause
	Position token.Position
	EndPos   token.Position
}

// CaseClause is one `case expr:` or `default:` clause.
type CaseClause struct {
	Cond     Expr // nil for default
	Body     []Stmt
	Position token.Position
}

// BreakStmt is `break [n];`.
type BreakStmt struct {
	Position token.Position
}

// ContinueStmt is `continue [n];`.
type ContinueStmt struct {
	Position token.Position
}

// ReturnStmt is `return [expr];`.
type ReturnStmt struct {
	Result   Expr // may be nil
	Position token.Position
}

// GlobalStmt is `global $a, $b;`.
type GlobalStmt struct {
	Names    []string
	Position token.Position
}

// StaticVarStmt is `static $a = init;` inside a function.
type StaticVarStmt struct {
	Names    []string
	Inits    []Expr // parallel to Names; entries may be nil
	Position token.Position
}

// UnsetStmt is `unset($a, $b);`.
type UnsetStmt struct {
	Args     []Expr
	Position token.Position
}

// ThrowStmt is `throw expr;`.
type ThrowStmt struct {
	X        Expr
	Position token.Position
}

// TryStmt is try/catch/finally.
type TryStmt struct {
	Body     *BlockStmt
	Catches  []*CatchClause
	Finally  *BlockStmt // may be nil
	Position token.Position
}

// CatchClause is one catch block.
type CatchClause struct {
	Types    []string
	Var      string // bound variable name without $; may be ""
	Body     *BlockStmt
	Position token.Position
}

// FunctionDecl declares a function or method.
type FunctionDecl struct {
	Name     string // original case
	Params   []*Param
	Body     *BlockStmt // nil for abstract/interface methods
	ByRef    bool
	Class    *ClassDecl // enclosing class for methods, nil for functions
	IsStatic bool
	Position token.Position
	EndPos   token.Position
}

// Param is a function parameter.
type Param struct {
	Name     string // without $
	Default  Expr   // may be nil
	ByRef    bool
	Variadic bool
	TypeHint string // raw type text, "" when absent
	Position token.Position
}

// ClassDecl declares a class or interface.
type ClassDecl struct {
	Name        string
	Parent      string // extends, "" when absent
	Interfaces  []string
	Methods     []*FunctionDecl
	Props       []*PropertyDecl
	Consts      []*ConstDecl
	IsInterface bool
	Position    token.Position
	EndPos      token.Position
}

// PropertyDecl is a class property declaration.
type PropertyDecl struct {
	Name     string // without $
	Default  Expr   // may be nil
	IsStatic bool
	Position token.Position
}

// ConstDecl is a class or global constant declaration.
type ConstDecl struct {
	Name     string
	Value    Expr
	Position token.Position
}

// IncludeStmt is include/require[_once] used at statement level. Include
// used as an expression is parsed as IncludeExpr.
type IncludeStmt struct {
	X        Expr
	Once     bool
	Require  bool
	Position token.Position
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Variable is `$name`.
type Variable struct {
	Name     string // without $
	Position token.Position
	EndPos   token.Position
}

// VarVar is `$$expr` (variable variable).
type VarVar struct {
	X        Expr
	Position token.Position
}

// Ident is a bare identifier: function name in calls, constant, class name.
type Ident struct {
	Name     string
	Position token.Position
	EndPos   token.Position
}

// IntLit is an integer literal.
type IntLit struct {
	Text     string
	Position token.Position
	EndPos   token.Position
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	Text     string
	Position token.Position
	EndPos   token.Position
}

// StringLit is a string literal with no interpolation.
type StringLit struct {
	Value    string
	Position token.Position
	EndPos   token.Position
}

// InterpString is a double-quoted/heredoc string with interpolation. Parts
// alternate literals and embedded expressions.
type InterpString struct {
	Parts    []Expr // *StringLit or variable-ish exprs
	Position token.Position
	EndPos   token.Position
}

// BoolLit is true/false.
type BoolLit struct {
	Value    bool
	Position token.Position
}

// NullLit is null.
type NullLit struct {
	Position token.Position
}

// ArrayLit is array(...) or [...].
type ArrayLit struct {
	Items    []*ArrayItem
	Position token.Position
	EndPos   token.Position
}

// ArrayItem is one element of an array literal.
type ArrayItem struct {
	Key      Expr // may be nil
	Value    Expr
	ByRef    bool
	Position token.Position
}

// IndexExpr is `x[i]`; Index may be nil for `x[] = v` appends.
type IndexExpr struct {
	X        Expr
	Index    Expr
	Position token.Position
	EndPos   token.Position
}

// PropExpr is `x->prop` (Prop may be a dynamic expression in {$...} form, in
// which case PropExpr.Name is "" and Dyn holds the expression).
type PropExpr struct {
	X        Expr
	Name     string
	Dyn      Expr
	Position token.Position
	EndPos   token.Position
}

// StaticPropExpr is `Class::$prop`.
type StaticPropExpr struct {
	Class    string
	Name     string
	Position token.Position
	EndPos   token.Position
}

// ClassConstExpr is `Class::CONST`.
type ClassConstExpr struct {
	Class    string
	Name     string
	Position token.Position
	EndPos   token.Position
}

// CallExpr is a function call `f(args)` where Fn is an Ident, Variable (for
// $f()), or arbitrary callee expression.
type CallExpr struct {
	Fn       Expr
	Args     []Expr
	ArgByRef []bool // parallel to Args
	Position token.Position
	EndPos   token.Position
}

// MethodCallExpr is `x->m(args)`.
type MethodCallExpr struct {
	Recv     Expr
	Name     string // "" when dynamic
	DynName  Expr   // dynamic method name expression
	Args     []Expr
	Position token.Position
	EndPos   token.Position
}

// StaticCallExpr is `Class::m(args)`.
type StaticCallExpr struct {
	Class    string
	Name     string
	Args     []Expr
	Position token.Position
	EndPos   token.Position
}

// NewExpr is `new Class(args)`.
type NewExpr struct {
	Class     string // "" when the class is an expression
	ClassExpr Expr
	Args      []Expr
	Position  token.Position
	EndPos    token.Position
}

// AssignExpr is `lhs op rhs` for any assignment operator; Op distinguishes
// `=`, `.=`, `+=` etc. ByRef marks `=&` reference assignment.
type AssignExpr struct {
	Lhs      Expr
	Op       token.Kind
	Rhs      Expr
	ByRef    bool
	Position token.Position
}

// ListExpr is `list($a, $b)` or `[$a, $b]` destructuring target.
type ListExpr struct {
	Items    []Expr // entries may be nil for skipped positions
	Position token.Position
	EndPos   token.Position
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	X        Expr
	Op       token.Kind
	Y        Expr
	Position token.Position
}

// UnaryExpr is a prefix unary operation (!x, -x, ~x, @x, +x).
type UnaryExpr struct {
	Op       token.Kind
	X        Expr
	Position token.Position
}

// IncDecExpr is ++x, --x, x++, x--.
type IncDecExpr struct {
	X        Expr
	Op       token.Kind // Inc or Dec
	Prefix   bool
	Position token.Position
}

// CastExpr is `(int) x` etc.
type CastExpr struct {
	Kind     token.Kind // one of the Cast* kinds
	X        Expr
	Position token.Position
}

// TernaryExpr is `cond ? a : b`; A may be nil for the `?:` short form.
type TernaryExpr struct {
	Cond     Expr
	A        Expr
	B        Expr
	Position token.Position
}

// IssetExpr is `isset(a, b, ...)`.
type IssetExpr struct {
	Args     []Expr
	Position token.Position
	EndPos   token.Position
}

// EmptyExpr is `empty(x)`.
type EmptyExpr struct {
	X        Expr
	Position token.Position
	EndPos   token.Position
}

// ExitExpr is `exit(x)` / `die(x)`; X may be nil.
type ExitExpr struct {
	X        Expr
	Position token.Position
}

// PrintExpr is `print x`.
type PrintExpr struct {
	X        Expr
	Position token.Position
}

// IncludeExpr is include/require used in expression position.
type IncludeExpr struct {
	X        Expr
	Once     bool
	Require  bool
	Position token.Position
}

// CloneExpr is `clone x`.
type CloneExpr struct {
	X        Expr
	Position token.Position
}

// ClosureExpr is an anonymous function, including arrow functions.
type ClosureExpr struct {
	Params   []*Param
	Uses     []*ClosureUse
	Body     *BlockStmt // arrow fn bodies become a single ReturnStmt
	IsArrow  bool
	Position token.Position
	EndPos   token.Position
}

// ClosureUse is one `use ($x, &$y)` binding.
type ClosureUse struct {
	Name  string
	ByRef bool
}

// InstanceofExpr is `x instanceof Class`.
type InstanceofExpr struct {
	X        Expr
	Class    string
	Position token.Position
}

// MatchExpr is a PHP 8 match expression.
type MatchExpr struct {
	Subject  Expr
	Arms     []*MatchArm
	Position token.Position
	EndPos   token.Position
}

// MatchArm is one `cond1, cond2 => result` arm; Conds is nil for default.
type MatchArm struct {
	Conds  []Expr
	Result Expr
}

// BadExpr is a placeholder emitted on parse errors so analysis can continue.
type BadExpr struct {
	Position token.Position
}

// ---------------------------------------------------------------------------
// Pos/End implementations
// ---------------------------------------------------------------------------

// Pos implements Node.
func (s *InlineHTMLStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *InlineHTMLStmt) End() token.Position { return s.EndPos }

// Pos implements Node.
func (s *ExprStmt) Pos() token.Position { return s.X.Pos() }

// End implements Node.
func (s *ExprStmt) End() token.Position { return s.X.End() }

// Pos implements Node.
func (s *EchoStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *EchoStmt) End() token.Position {
	if n := len(s.Args); n > 0 {
		return s.Args[n-1].End()
	}
	return s.Position
}

// Pos implements Node.
func (s *BlockStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *BlockStmt) End() token.Position { return s.EndPos }

// Pos implements Node.
func (s *IfStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *IfStmt) End() token.Position {
	if s.Else != nil {
		return s.Else.End()
	}
	if s.Then != nil {
		return s.Then.End()
	}
	return s.Position
}

// Pos implements Node.
func (s *WhileStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *WhileStmt) End() token.Position { return s.Body.End() }

// Pos implements Node.
func (s *DoWhileStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *DoWhileStmt) End() token.Position { return s.Cond.End() }

// Pos implements Node.
func (s *ForStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ForStmt) End() token.Position { return s.Body.End() }

// Pos implements Node.
func (s *ForeachStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ForeachStmt) End() token.Position { return s.Body.End() }

// Pos implements Node.
func (s *SwitchStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *SwitchStmt) End() token.Position { return s.EndPos }

// Pos implements Node.
func (c *CaseClause) Pos() token.Position { return c.Position }

// End implements Node.
func (c *CaseClause) End() token.Position {
	if n := len(c.Body); n > 0 {
		return c.Body[n-1].End()
	}
	return c.Position
}

// Pos implements Node.
func (s *BreakStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *BreakStmt) End() token.Position { return s.Position }

// Pos implements Node.
func (s *ContinueStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ContinueStmt) End() token.Position { return s.Position }

// Pos implements Node.
func (s *ReturnStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ReturnStmt) End() token.Position {
	if s.Result != nil {
		return s.Result.End()
	}
	return s.Position
}

// Pos implements Node.
func (s *GlobalStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *GlobalStmt) End() token.Position { return s.Position }

// Pos implements Node.
func (s *StaticVarStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *StaticVarStmt) End() token.Position { return s.Position }

// Pos implements Node.
func (s *UnsetStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *UnsetStmt) End() token.Position { return s.Position }

// Pos implements Node.
func (s *ThrowStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ThrowStmt) End() token.Position { return s.X.End() }

// Pos implements Node.
func (s *TryStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *TryStmt) End() token.Position {
	if s.Finally != nil {
		return s.Finally.End()
	}
	if n := len(s.Catches); n > 0 {
		return s.Catches[n-1].Body.End()
	}
	return s.Body.End()
}

// Pos implements Node.
func (s *FunctionDecl) Pos() token.Position { return s.Position }

// End implements Node.
func (s *FunctionDecl) End() token.Position { return s.EndPos }

// Pos implements Node.
func (s *ClassDecl) Pos() token.Position { return s.Position }

// End implements Node.
func (s *ClassDecl) End() token.Position { return s.EndPos }

// Pos implements Node.
func (s *IncludeStmt) Pos() token.Position { return s.Position }

// End implements Node.
func (s *IncludeStmt) End() token.Position { return s.X.End() }

// Pos implements Node.
func (e *Variable) Pos() token.Position { return e.Position }

// End implements Node.
func (e *Variable) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *VarVar) Pos() token.Position { return e.Position }

// End implements Node.
func (e *VarVar) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *Ident) Pos() token.Position { return e.Position }

// End implements Node.
func (e *Ident) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *IntLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *IntLit) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *FloatLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *FloatLit) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *StringLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *StringLit) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *InterpString) Pos() token.Position { return e.Position }

// End implements Node.
func (e *InterpString) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *BoolLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *BoolLit) End() token.Position { return e.Position }

// Pos implements Node.
func (e *NullLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *NullLit) End() token.Position { return e.Position }

// Pos implements Node.
func (e *ArrayLit) Pos() token.Position { return e.Position }

// End implements Node.
func (e *ArrayLit) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *IndexExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *IndexExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *PropExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *PropExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *StaticPropExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *StaticPropExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *ClassConstExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *ClassConstExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *CallExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *CallExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *MethodCallExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *MethodCallExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *StaticCallExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *StaticCallExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *NewExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *NewExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *AssignExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *AssignExpr) End() token.Position { return e.Rhs.End() }

// Pos implements Node.
func (e *ListExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *ListExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *BinaryExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *BinaryExpr) End() token.Position { return e.Y.End() }

// Pos implements Node.
func (e *UnaryExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *UnaryExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *IncDecExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *IncDecExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *CastExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *CastExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *TernaryExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *TernaryExpr) End() token.Position { return e.B.End() }

// Pos implements Node.
func (e *IssetExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *IssetExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *EmptyExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *EmptyExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *ExitExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *ExitExpr) End() token.Position {
	if e.X != nil {
		return e.X.End()
	}
	return e.Position
}

// Pos implements Node.
func (e *PrintExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *PrintExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *IncludeExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *IncludeExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *CloneExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *CloneExpr) End() token.Position { return e.X.End() }

// Pos implements Node.
func (e *ClosureExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *ClosureExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *InstanceofExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *InstanceofExpr) End() token.Position { return e.Position }

// Pos implements Node.
func (e *MatchExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *MatchExpr) End() token.Position { return e.EndPos }

// Pos implements Node.
func (e *BadExpr) Pos() token.Position { return e.Position }

// End implements Node.
func (e *BadExpr) End() token.Position { return e.Position }

// ---------------------------------------------------------------------------
// Marker methods
// ---------------------------------------------------------------------------

func (*InlineHTMLStmt) stmtNode() {}
func (*ExprStmt) stmtNode()       {}
func (*EchoStmt) stmtNode()       {}
func (*BlockStmt) stmtNode()      {}
func (*IfStmt) stmtNode()         {}
func (*WhileStmt) stmtNode()      {}
func (*DoWhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()        {}
func (*ForeachStmt) stmtNode()    {}
func (*SwitchStmt) stmtNode()     {}
func (*BreakStmt) stmtNode()      {}
func (*ContinueStmt) stmtNode()   {}
func (*ReturnStmt) stmtNode()     {}
func (*GlobalStmt) stmtNode()     {}
func (*StaticVarStmt) stmtNode()  {}
func (*UnsetStmt) stmtNode()      {}
func (*ThrowStmt) stmtNode()      {}
func (*TryStmt) stmtNode()        {}
func (*FunctionDecl) stmtNode()   {}
func (*ClassDecl) stmtNode()      {}
func (*IncludeStmt) stmtNode()    {}

func (*Variable) exprNode()       {}
func (*VarVar) exprNode()         {}
func (*Ident) exprNode()          {}
func (*IntLit) exprNode()         {}
func (*FloatLit) exprNode()       {}
func (*StringLit) exprNode()      {}
func (*InterpString) exprNode()   {}
func (*BoolLit) exprNode()        {}
func (*NullLit) exprNode()        {}
func (*ArrayLit) exprNode()       {}
func (*IndexExpr) exprNode()      {}
func (*PropExpr) exprNode()       {}
func (*StaticPropExpr) exprNode() {}
func (*ClassConstExpr) exprNode() {}
func (*CallExpr) exprNode()       {}
func (*MethodCallExpr) exprNode() {}
func (*StaticCallExpr) exprNode() {}
func (*NewExpr) exprNode()        {}
func (*AssignExpr) exprNode()     {}
func (*ListExpr) exprNode()       {}
func (*BinaryExpr) exprNode()     {}
func (*UnaryExpr) exprNode()      {}
func (*IncDecExpr) exprNode()     {}
func (*CastExpr) exprNode()       {}
func (*TernaryExpr) exprNode()    {}
func (*IssetExpr) exprNode()      {}
func (*EmptyExpr) exprNode()      {}
func (*ExitExpr) exprNode()       {}
func (*PrintExpr) exprNode()      {}
func (*IncludeExpr) exprNode()    {}
func (*CloneExpr) exprNode()      {}
func (*MatchExpr) exprNode()      {}
func (*BadExpr) exprNode()        {}
func (*ClosureExpr) exprNode()    {}
func (*InstanceofExpr) exprNode() {}
