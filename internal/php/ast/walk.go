package ast

// Visitor is the interface for AST traversal. Visit is called for each node;
// returning a nil Visitor prunes the subtree.
type Visitor interface {
	Visit(n Node) Visitor
}

// inspector adapts a function to the Visitor interface.
type inspector func(Node) bool

// Visit implements Visitor.
func (f inspector) Visit(n Node) Visitor {
	if f(n) {
		return f
	}
	return nil
}

// Inspect traverses the tree rooted at n, calling f for every node. If f
// returns false the children of the node are skipped.
func Inspect(n Node, f func(Node) bool) {
	Walk(inspector(f), n)
}

// Walk traverses the AST in depth-first order, calling v.Visit for each node.
func Walk(v Visitor, n Node) {
	if n == nil {
		return
	}
	if v = v.Visit(n); v == nil {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, s := range x.Stmts {
			Walk(v, s)
		}
	case *InlineHTMLStmt, *BreakStmt, *ContinueStmt, *GlobalStmt:
		// leaves
	case *ExprStmt:
		Walk(v, x.X)
	case *EchoStmt:
		walkExprs(v, x.Args)
	case *BlockStmt:
		for _, s := range x.Stmts {
			Walk(v, s)
		}
	case *IfStmt:
		Walk(v, x.Cond)
		Walk(v, x.Then)
		if x.Else != nil {
			Walk(v, x.Else)
		}
	case *WhileStmt:
		Walk(v, x.Cond)
		Walk(v, x.Body)
	case *DoWhileStmt:
		Walk(v, x.Body)
		Walk(v, x.Cond)
	case *ForStmt:
		walkExprs(v, x.Init)
		walkExprs(v, x.Cond)
		walkExprs(v, x.Post)
		Walk(v, x.Body)
	case *ForeachStmt:
		Walk(v, x.Subject)
		if x.Key != nil {
			Walk(v, x.Key)
		}
		Walk(v, x.Value)
		Walk(v, x.Body)
	case *SwitchStmt:
		Walk(v, x.Subject)
		for _, c := range x.Cases {
			if c.Cond != nil {
				Walk(v, c.Cond)
			}
			for _, s := range c.Body {
				Walk(v, s)
			}
		}
	case *ReturnStmt:
		if x.Result != nil {
			Walk(v, x.Result)
		}
	case *StaticVarStmt:
		for _, e := range x.Inits {
			if e != nil {
				Walk(v, e)
			}
		}
	case *UnsetStmt:
		walkExprs(v, x.Args)
	case *ThrowStmt:
		Walk(v, x.X)
	case *TryStmt:
		Walk(v, x.Body)
		for _, c := range x.Catches {
			Walk(v, c.Body)
		}
		if x.Finally != nil {
			Walk(v, x.Finally)
		}
	case *FunctionDecl:
		for _, p := range x.Params {
			if p.Default != nil {
				Walk(v, p.Default)
			}
		}
		if x.Body != nil {
			Walk(v, x.Body)
		}
	case *ClassDecl:
		for _, p := range x.Props {
			if p.Default != nil {
				Walk(v, p.Default)
			}
		}
		for _, c := range x.Consts {
			Walk(v, c.Value)
		}
		for _, m := range x.Methods {
			Walk(v, m)
		}
	case *IncludeStmt:
		Walk(v, x.X)
	case *Variable, *Ident, *IntLit, *FloatLit, *StringLit, *BoolLit,
		*NullLit, *StaticPropExpr, *ClassConstExpr, *BadExpr:
		// leaves
	case *VarVar:
		Walk(v, x.X)
	case *InterpString:
		walkExprs(v, x.Parts)
	case *ArrayLit:
		for _, it := range x.Items {
			if it.Key != nil {
				Walk(v, it.Key)
			}
			Walk(v, it.Value)
		}
	case *IndexExpr:
		Walk(v, x.X)
		if x.Index != nil {
			Walk(v, x.Index)
		}
	case *PropExpr:
		Walk(v, x.X)
		if x.Dyn != nil {
			Walk(v, x.Dyn)
		}
	case *CallExpr:
		Walk(v, x.Fn)
		walkExprs(v, x.Args)
	case *MethodCallExpr:
		Walk(v, x.Recv)
		if x.DynName != nil {
			Walk(v, x.DynName)
		}
		walkExprs(v, x.Args)
	case *StaticCallExpr:
		walkExprs(v, x.Args)
	case *NewExpr:
		if x.ClassExpr != nil {
			Walk(v, x.ClassExpr)
		}
		walkExprs(v, x.Args)
	case *AssignExpr:
		Walk(v, x.Lhs)
		Walk(v, x.Rhs)
	case *ListExpr:
		for _, it := range x.Items {
			if it != nil {
				Walk(v, it)
			}
		}
	case *BinaryExpr:
		Walk(v, x.X)
		Walk(v, x.Y)
	case *UnaryExpr:
		Walk(v, x.X)
	case *IncDecExpr:
		Walk(v, x.X)
	case *CastExpr:
		Walk(v, x.X)
	case *TernaryExpr:
		Walk(v, x.Cond)
		if x.A != nil {
			Walk(v, x.A)
		}
		Walk(v, x.B)
	case *IssetExpr:
		walkExprs(v, x.Args)
	case *EmptyExpr:
		Walk(v, x.X)
	case *ExitExpr:
		if x.X != nil {
			Walk(v, x.X)
		}
	case *PrintExpr:
		Walk(v, x.X)
	case *IncludeExpr:
		Walk(v, x.X)
	case *CloneExpr:
		Walk(v, x.X)
	case *ClosureExpr:
		for _, p := range x.Params {
			if p.Default != nil {
				Walk(v, p.Default)
			}
		}
		if x.Body != nil {
			Walk(v, x.Body)
		}
	case *InstanceofExpr:
		Walk(v, x.X)
	case *MatchExpr:
		Walk(v, x.Subject)
		for _, arm := range x.Arms {
			walkExprs(v, arm.Conds)
			Walk(v, arm.Result)
		}
	}
}

func walkExprs(v Visitor, es []Expr) {
	for _, e := range es {
		if e != nil {
			Walk(v, e)
		}
	}
}

// CalleeName returns the lower-cased callee name of a call expression when
// it is a plain identifier, and "" otherwise.
func CalleeName(call *CallExpr) string {
	if id, ok := call.Fn.(*Ident); ok {
		return lower(id.Name)
	}
	return ""
}

// lower is a fast ASCII lower-caser for function names.
func lower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + ('a' - 'A')
		}
	}
	return string(b)
}
