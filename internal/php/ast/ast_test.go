package ast_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/php/ast"
	"repro/internal/php/parser"
)

// fingerprint renders a structural summary of a tree: node kinds plus the
// identifiers that matter for analysis. Two trees with equal fingerprints
// are equivalent for every analysis in this repository.
func fingerprint(n ast.Node) string {
	var b strings.Builder
	ast.Inspect(n, func(m ast.Node) bool {
		switch t := m.(type) {
		case *ast.Variable:
			fmt.Fprintf(&b, "var(%s);", t.Name)
		case *ast.Ident:
			fmt.Fprintf(&b, "id(%s);", strings.ToLower(t.Name))
		case *ast.StringLit:
			fmt.Fprintf(&b, "str(%q);", t.Value)
		case *ast.IntLit:
			fmt.Fprintf(&b, "int(%s);", t.Text)
		case *ast.CallExpr:
			fmt.Fprintf(&b, "call;")
		case *ast.MethodCallExpr:
			fmt.Fprintf(&b, "mcall(%s);", strings.ToLower(t.Name))
		case *ast.AssignExpr:
			fmt.Fprintf(&b, "assign(%s);", t.Op)
		case *ast.BinaryExpr:
			// Concatenation is skipped: the printer normalizes interpolated
			// strings into explicit concatenation, which is equivalent for
			// every analysis here.
			if t.Op.String() != "." {
				fmt.Fprintf(&b, "bin(%s);", t.Op)
			}
		case *ast.EchoStmt:
			fmt.Fprintf(&b, "echo;")
		case *ast.IfStmt:
			fmt.Fprintf(&b, "if;")
		case *ast.ForeachStmt:
			fmt.Fprintf(&b, "foreach;")
		case *ast.FunctionDecl:
			fmt.Fprintf(&b, "func(%s);", strings.ToLower(t.Name))
		case *ast.ClassDecl:
			fmt.Fprintf(&b, "class(%s);", strings.ToLower(t.Name))
		case *ast.ReturnStmt:
			fmt.Fprintf(&b, "ret;")
		case *ast.IndexExpr:
			fmt.Fprintf(&b, "idx;")
		case *ast.IssetExpr:
			fmt.Fprintf(&b, "isset;")
		case *ast.TernaryExpr:
			fmt.Fprintf(&b, "ternary;")
		}
		return true
	})
	return b.String()
}

var roundtripSources = []string{
	`<?php $x = $_GET['id'];`,
	`<?php mysql_query("SELECT * FROM t WHERE id=" . $id);`,
	`<?php if ($a) { echo 1; } elseif ($b) { echo 2; } else { echo 3; }`,
	`<?php foreach ($rows as $k => $v) { $out[] = $v; }`,
	`<?php for ($i = 0; $i < 10; $i++) { work($i); }`,
	`<?php while ($row = fetch()) { echo $row; }`,
	`<?php do { $n--; } while ($n > 0);`,
	`<?php function f($a, $b = 2, &$c = null) { return $a . $b; }`,
	`<?php class C extends B implements I { const K = 1; public $p = 'x'; public static function m($q) { return self::$inst; } }`,
	`<?php switch ($x) { case 1: echo 'a'; break; default: echo 'b'; }`,
	`<?php try { risky(); } catch (E $e) { log_err($e); } finally { done(); }`,
	`<?php $f = function ($x) use ($db, &$log) { return $db->q($x); };`,
	`<?php echo isset($a) ? $a : 'default';`,
	`<?php $obj->prop->method($arg1, $arg2);`,
	`<?php DB::query($sql); $o = new Widget('x');`,
	`<?php list($a, , $c) = explode(',', $s);`,
	`<?php global $db; static $count = 0; unset($tmp);`,
	`<?php include 'a.php'; require_once "b.php";`,
	`<?php $q = "SELECT name FROM users WHERE id=$id AND t='{$row['t']}'";`,
	`<?php throw new RuntimeException("nope");`,
	`<?php $a = (int)$_GET['n'] + 1; $b = !$flag; $c = -$num;`,
	`<?php print @file_get_contents($f);`,
	`<?php $arr = array('k' => 1, 2, 'x' => array(3));`,
	`<?php $s = $cond ?: fallback(); $t = $v ?? 'd';`,
	`<?php do { $i--; } while ($i > 0);`,
	`<?php switch ($m) { case 'a': run(); break; default: stop(); }`,
	`<?php unset($a, $b['k']);`,
	`<?php interface I { public function m($x); }`,
	`<?php abstract class B { abstract function f(); }`,
	`<?php $x =& $shared; $c = clone $proto;`,
	`<?php exit(1); exit;`,
	`<?php $n = (int)$s; $f = (float)$s; $b = (bool)$s; $a = (array)$s;`,
	`<?php $ok = $e instanceof RuntimeException;`,
	`<?php ${'dynamic'} = 5;`,
	`<?php $neg = -$v; $not = !$flag; $inv = ~$bits; $err = @risky();`,
	`<?php $i++; --$j;`,
	`<?php $r = $a % $b << 2 | $c & $d ^ $e;`,
	`<?php function v(...$args) { return $args; }`,
	`<?php function r(&$out) { $out = 1; }`,
	`<?php C::$prop = 1; echo C::KONST;`,
	`<?php $m = $obj->{$name}; $obj->{$name}(1);`,
	`<?php while (true) { if ($x) { continue; } break; }`,
	`<?php $h = <<<EOT
line $x
EOT;`,
	`<?php echo 'a', $b, "c$d";`,
	`<?php $cfg = array('a' => array('b' => 2), 3);`,
	`<?php if ($a): one(); elseif ($b): two(); else: three(); endif;`,
	`<?php global $db; static $hits = 0; $hits++;`,
	`<?php $arr[] = $v; $arr['k'] = $w; $m[0][1] = 2;`,
}

func TestPrintRoundtrip(t *testing.T) {
	for _, src := range roundtripSources {
		orig, errs := parser.Parse("orig.php", src)
		if len(errs) > 0 {
			t.Fatalf("%q: parse: %v", src, errs)
		}
		printed := ast.Print(orig)
		re, errs := parser.Parse("printed.php", printed)
		if len(errs) > 0 {
			t.Errorf("%q: printed source does not parse: %v\n%s", src, errs, printed)
			continue
		}
		if got, want := fingerprint(re), fingerprint(orig); got != want {
			t.Errorf("%q: roundtrip fingerprint mismatch\n got: %s\nwant: %s\nprinted:\n%s",
				src, got, want, printed)
		}
	}
}

func TestPrintRoundtripCorpusStyle(t *testing.T) {
	// A page mixing HTML and PHP like the corpus generates.
	src := `<div><?php
$id = $_GET['uid'];
$res = mysql_query("SELECT name FROM users WHERE id=" . $id);
if ($res) {
    $row = mysql_fetch_assoc($res);
    echo "<b>" . htmlspecialchars($row['name']) . "</b>";
}
?></div>`
	orig, errs := parser.Parse("page.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	printed := ast.Print(orig)
	re, errs := parser.Parse("printed.php", printed)
	if len(errs) > 0 {
		t.Fatalf("printed page does not parse: %v\n%s", errs, printed)
	}
	// HTML is normalized to echo, so statement counts may differ; check the
	// key nodes survive.
	for _, want := range []string{"var(id);", "call;", "id(mysql_fetch_assoc);", "echo;"} {
		if !strings.Contains(fingerprint(re), want) {
			t.Errorf("roundtrip lost %s", want)
		}
	}
}

func TestPrintExprParenthesization(t *testing.T) {
	// Precedence must survive even though the printer has no operator table.
	src := `<?php $x = ($a + $b) * $c;`
	f, _ := parser.Parse("p.php", src)
	printed := ast.Print(f)
	re, errs := parser.Parse("re.php", printed)
	if len(errs) > 0 {
		t.Fatalf("%v\n%s", errs, printed)
	}
	if fingerprint(re) != fingerprint(f) {
		t.Errorf("parenthesization broke precedence:\n%s", printed)
	}
}

// TestAllNodeSpans exercises Pos/End on every node kind across the whole
// roundtrip corpus: End must never precede Pos and positions must be valid.
func TestAllNodeSpans(t *testing.T) {
	for _, src := range roundtripSources {
		f, errs := parser.Parse("span.php", src)
		if len(errs) > 0 {
			t.Fatalf("%q: %v", src, errs)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			pos, end := n.Pos(), n.End()
			if end.Offset < pos.Offset {
				t.Errorf("%q: %T end %v before pos %v", src, n, end, pos)
			}
			if pos.Line < 1 {
				t.Errorf("%q: %T invalid line %d", src, n, pos.Line)
			}
			return true
		})
	}
}

func TestWalkPruning(t *testing.T) {
	f, _ := parser.Parse("w.php", `<?php function g() { echo $inner; } echo $outer;`)
	seen := []string{}
	ast.Inspect(f, func(n ast.Node) bool {
		if v, ok := n.(*ast.Variable); ok {
			seen = append(seen, v.Name)
		}
		// Prune function bodies.
		if _, ok := n.(*ast.FunctionDecl); ok {
			return false
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "outer" {
		t.Errorf("pruning failed: %v", seen)
	}
}

func TestCalleeName(t *testing.T) {
	f, _ := parser.Parse("c.php", `<?php MySQL_Query($q); $fn($q);`)
	var names []string
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			names = append(names, ast.CalleeName(call))
		}
		return true
	})
	if len(names) != 2 || names[0] != "mysql_query" || names[1] != "" {
		t.Errorf("callee names = %v", names)
	}
}

func TestFilePosEmpty(t *testing.T) {
	f := &ast.File{Name: "empty.php"}
	if f.Pos().Line != 1 || f.End().Line != 1 {
		t.Errorf("empty file pos = %v end = %v", f.Pos(), f.End())
	}
}

func TestPrintStmtAndExprHelpers(t *testing.T) {
	f, _ := parser.Parse("h.php", `<?php $a = 1 + 2;`)
	es := f.Stmts[0].(*ast.ExprStmt)
	if got := ast.PrintStmtSrc(es); !strings.Contains(got, "$a = ") {
		t.Errorf("stmt = %q", got)
	}
	if got := ast.PrintExprSrc(es.X); !strings.Contains(got, "1 + 2") {
		t.Errorf("expr = %q", got)
	}
}

func TestMatchRoundtrip(t *testing.T) {
	src := `<?php $r = match ($x) { 1, 2 => 'low', default => other($x) };`
	f, errs := parser.Parse("m.php", src)
	if len(errs) > 0 {
		t.Fatal(errs)
	}
	printed := ast.Print(f)
	re, errs := parser.Parse("re.php", printed)
	if len(errs) > 0 {
		t.Fatalf("printed match does not parse: %v\n%s", errs, printed)
	}
	if fingerprint(re) != fingerprint(f) {
		t.Errorf("match roundtrip mismatch:\n%s", printed)
	}
}
