package ast

import (
	"fmt"
	"strings"

	"repro/internal/php/token"
)

// Print renders the AST back to PHP source. The output is normalized
// (canonical spacing and braces) rather than byte-identical to the input;
// re-parsing the output yields an equivalent tree, which the tests assert.
func Print(f *File) string {
	p := &printer{}
	p.file(f)
	return p.b.String()
}

// PrintExprSrc renders a single expression.
func PrintExprSrc(e Expr) string {
	p := &printer{}
	p.expr(e)
	return p.b.String()
}

// PrintStmtSrc renders a single statement (inside an open PHP context).
func PrintStmtSrc(s Stmt) string {
	p := &printer{}
	p.stmt(s)
	return p.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) writef(format string, args ...any) {
	fmt.Fprintf(&p.b, format, args...)
}

func (p *printer) line(s string) {
	p.b.WriteString(strings.Repeat("    ", p.indent))
	p.b.WriteString(s)
	p.b.WriteString("\n")
}

func (p *printer) file(f *File) {
	p.b.WriteString("<?php\n")
	for _, s := range f.Stmts {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch t := s.(type) {
	case *InlineHTMLStmt:
		p.line("echo " + quote(t.Text) + ";") // normalize HTML to echo
	case *ExprStmt:
		p.line(PrintExprSrc(t.X) + ";")
	case *EchoStmt:
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = PrintExprSrc(a)
		}
		p.line("echo " + strings.Join(parts, ", ") + ";")
	case *BlockStmt:
		p.line("{")
		p.indent++
		for _, st := range t.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.line("}")
	case *IfStmt:
		p.ifChain(t, "if")
	case *WhileStmt:
		p.line("while (" + PrintExprSrc(t.Cond) + ") {")
		p.body(t.Body)
		p.line("}")
	case *DoWhileStmt:
		p.line("do {")
		p.body(t.Body)
		p.line("} while (" + PrintExprSrc(t.Cond) + ");")
	case *ForStmt:
		p.line("for (" + exprList(t.Init) + "; " + exprList(t.Cond) + "; " + exprList(t.Post) + ") {")
		p.body(t.Body)
		p.line("}")
	case *ForeachStmt:
		head := "foreach (" + PrintExprSrc(t.Subject) + " as "
		if t.Key != nil {
			head += PrintExprSrc(t.Key) + " => "
		}
		if t.ByRef {
			head += "&"
		}
		head += PrintExprSrc(t.Value) + ") {"
		p.line(head)
		p.body(t.Body)
		p.line("}")
	case *SwitchStmt:
		p.line("switch (" + PrintExprSrc(t.Subject) + ") {")
		p.indent++
		for _, c := range t.Cases {
			if c.Cond != nil {
				p.line("case " + PrintExprSrc(c.Cond) + ":")
			} else {
				p.line("default:")
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.indent--
		p.line("}")
	case *BreakStmt:
		p.line("break;")
	case *ContinueStmt:
		p.line("continue;")
	case *ReturnStmt:
		if t.Result != nil {
			p.line("return " + PrintExprSrc(t.Result) + ";")
		} else {
			p.line("return;")
		}
	case *GlobalStmt:
		names := make([]string, len(t.Names))
		for i, n := range t.Names {
			names[i] = "$" + n
		}
		p.line("global " + strings.Join(names, ", ") + ";")
	case *StaticVarStmt:
		parts := make([]string, len(t.Names))
		for i, n := range t.Names {
			parts[i] = "$" + n
			if t.Inits[i] != nil {
				parts[i] += " = " + PrintExprSrc(t.Inits[i])
			}
		}
		p.line("static " + strings.Join(parts, ", ") + ";")
	case *UnsetStmt:
		p.line("unset(" + exprList(t.Args) + ");")
	case *ThrowStmt:
		p.line("throw " + PrintExprSrc(t.X) + ";")
	case *TryStmt:
		p.line("try {")
		p.body(t.Body)
		for _, c := range t.Catches {
			head := "} catch (" + strings.Join(c.Types, " | ")
			if c.Var != "" {
				head += " $" + c.Var
			}
			p.line(head + ") {")
			p.body(c.Body)
		}
		if t.Finally != nil {
			p.line("} finally {")
			p.body(t.Finally)
		}
		p.line("}")
	case *FunctionDecl:
		p.funcDecl(t, "")
	case *ClassDecl:
		p.classDecl(t)
	case *IncludeStmt:
		p.line(includeKeyword(t.Once, t.Require) + " " + PrintExprSrc(t.X) + ";")
	}
}

func (p *printer) ifChain(t *IfStmt, kw string) {
	p.line(kw + " (" + PrintExprSrc(t.Cond) + ") {")
	p.body(t.Then)
	switch e := t.Else.(type) {
	case nil:
		p.line("}")
	case *IfStmt:
		p.line("}")
		p.ifChain(e, "elseif")
	case *BlockStmt:
		p.line("} else {")
		p.body(e)
		p.line("}")
	default:
		p.line("} else {")
		p.indent++
		p.stmt(t.Else)
		p.indent--
		p.line("}")
	}
}

func (p *printer) body(b *BlockStmt) {
	if b == nil {
		return
	}
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
}

func (p *printer) funcDecl(t *FunctionDecl, modifiers string) {
	head := modifiers + "function "
	if t.ByRef {
		head += "&"
	}
	head += t.Name + "(" + params(t.Params) + ")"
	if t.Body == nil {
		p.line(head + ";")
		return
	}
	p.line(head + " {")
	p.body(t.Body)
	p.line("}")
}

func (p *printer) classDecl(t *ClassDecl) {
	head := "class "
	if t.IsInterface {
		head = "interface "
	}
	head += t.Name
	if t.Parent != "" {
		head += " extends " + t.Parent
	}
	if len(t.Interfaces) > 0 {
		head += " implements " + strings.Join(t.Interfaces, ", ")
	}
	p.line(head + " {")
	p.indent++
	for _, c := range t.Consts {
		p.line("const " + c.Name + " = " + PrintExprSrc(c.Value) + ";")
	}
	for _, prop := range t.Props {
		mod := "public "
		if prop.IsStatic {
			mod += "static "
		}
		line := mod + "$" + prop.Name
		if prop.Default != nil {
			line += " = " + PrintExprSrc(prop.Default)
		}
		p.line(line + ";")
	}
	for _, m := range t.Methods {
		mod := "public "
		if m.IsStatic {
			mod += "static "
		}
		p.funcDecl(m, mod)
	}
	p.indent--
	p.line("}")
}

func params(ps []*Param) string {
	out := make([]string, len(ps))
	for i, prm := range ps {
		s := ""
		if prm.TypeHint != "" {
			s += prm.TypeHint + " "
		}
		if prm.ByRef {
			s += "&"
		}
		if prm.Variadic {
			s += "..."
		}
		s += "$" + prm.Name
		if prm.Default != nil {
			s += " = " + PrintExprSrc(prm.Default)
		}
		out[i] = s
	}
	return strings.Join(out, ", ")
}

func exprList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = PrintExprSrc(e)
	}
	return strings.Join(parts, ", ")
}

func includeKeyword(once, require bool) string {
	switch {
	case require && once:
		return "require_once"
	case require:
		return "require"
	case once:
		return "include_once"
	default:
		return "include"
	}
}

// expr renders an expression with conservative parenthesization: nested
// binary/ternary operands are always parenthesized, so precedence survives
// the round trip without an operator table.
func (p *printer) expr(e Expr) {
	switch t := e.(type) {
	case *Variable:
		p.writef("$%s", t.Name)
	case *VarVar:
		p.writef("${%s}", PrintExprSrc(t.X))
	case *Ident:
		p.b.WriteString(t.Name)
	case *IntLit:
		p.b.WriteString(t.Text)
	case *FloatLit:
		p.b.WriteString(t.Text)
	case *StringLit:
		p.b.WriteString(quote(t.Value))
	case *InterpString:
		// Normalize interpolation to explicit concatenation.
		parts := make([]string, 0, len(t.Parts))
		for _, part := range t.Parts {
			if lit, ok := part.(*StringLit); ok && lit.Value == "" {
				continue
			}
			parts = append(parts, maybeParen(part))
		}
		if len(parts) == 0 {
			p.b.WriteString("''")
			return
		}
		p.b.WriteString(strings.Join(parts, " . "))
	case *BoolLit:
		if t.Value {
			p.b.WriteString("true")
		} else {
			p.b.WriteString("false")
		}
	case *NullLit:
		p.b.WriteString("null")
	case *ArrayLit:
		items := make([]string, len(t.Items))
		for i, it := range t.Items {
			s := ""
			if it.Key != nil {
				s = PrintExprSrc(it.Key) + " => "
			}
			if it.ByRef {
				s += "&"
			}
			s += PrintExprSrc(it.Value)
			items[i] = s
		}
		p.writef("array(%s)", strings.Join(items, ", "))
	case *IndexExpr:
		p.expr(t.X)
		if t.Index != nil {
			p.writef("[%s]", PrintExprSrc(t.Index))
		} else {
			p.b.WriteString("[]")
		}
	case *PropExpr:
		p.expr(t.X)
		if t.Name != "" {
			p.writef("->%s", t.Name)
		} else {
			p.writef("->{%s}", PrintExprSrc(t.Dyn))
		}
	case *StaticPropExpr:
		p.writef("%s::$%s", orStatic(t.Class), t.Name)
	case *ClassConstExpr:
		p.writef("%s::%s", orStatic(t.Class), t.Name)
	case *CallExpr:
		p.expr(t.Fn)
		p.writef("(%s)", exprList(t.Args))
	case *MethodCallExpr:
		p.expr(t.Recv)
		if t.Name != "" {
			p.writef("->%s(%s)", t.Name, exprList(t.Args))
		} else {
			p.writef("->{%s}(%s)", PrintExprSrc(t.DynName), exprList(t.Args))
		}
	case *StaticCallExpr:
		p.writef("%s::%s(%s)", orStatic(t.Class), t.Name, exprList(t.Args))
	case *NewExpr:
		switch {
		case t.Class != "":
			p.writef("new %s(%s)", t.Class, exprList(t.Args))
		case t.ClassExpr != nil:
			p.writef("new %s(%s)", PrintExprSrc(t.ClassExpr), exprList(t.Args))
		default:
			p.writef("new stdClass()")
		}
	case *AssignExpr:
		p.expr(t.Lhs)
		op := t.Op.String()
		if t.ByRef {
			op = "=&"
		}
		p.writef(" %s ", op)
		p.b.WriteString(maybeParen(t.Rhs))
	case *ListExpr:
		items := make([]string, len(t.Items))
		for i, it := range t.Items {
			if it != nil {
				items[i] = PrintExprSrc(it)
			}
		}
		p.writef("list(%s)", strings.Join(items, ", "))
	case *BinaryExpr:
		p.b.WriteString(maybeParen(t.X))
		p.writef(" %s ", t.Op.String())
		p.b.WriteString(maybeParen(t.Y))
	case *UnaryExpr:
		switch t.Op {
		case token.At:
			p.b.WriteString("@")
		case token.Not:
			p.b.WriteString("!")
		case token.Minus:
			p.b.WriteString("-")
		case token.Plus:
			p.b.WriteString("+")
		case token.Tilde:
			p.b.WriteString("~")
		case token.KwThrow:
			p.b.WriteString("throw ")
		}
		p.b.WriteString(maybeParen(t.X))
	case *IncDecExpr:
		if t.Prefix {
			p.b.WriteString(t.Op.String())
			p.expr(t.X)
		} else {
			p.expr(t.X)
			p.b.WriteString(t.Op.String())
		}
	case *CastExpr:
		p.b.WriteString(t.Kind.String())
		p.b.WriteString(maybeParen(t.X))
	case *TernaryExpr:
		p.b.WriteString(maybeParen(t.Cond))
		if t.A != nil {
			p.writef(" ? %s : %s", maybeParen(t.A), maybeParen(t.B))
		} else {
			p.writef(" ?: %s", maybeParen(t.B))
		}
	case *IssetExpr:
		p.writef("isset(%s)", exprList(t.Args))
	case *EmptyExpr:
		p.writef("empty(%s)", PrintExprSrc(t.X))
	case *ExitExpr:
		if t.X != nil {
			p.writef("exit(%s)", PrintExprSrc(t.X))
		} else {
			p.b.WriteString("exit")
		}
	case *PrintExpr:
		p.writef("print %s", maybeParen(t.X))
	case *IncludeExpr:
		p.writef("%s %s", includeKeyword(t.Once, t.Require), maybeParen(t.X))
	case *CloneExpr:
		p.writef("clone %s", maybeParen(t.X))
	case *ClosureExpr:
		p.writef("function (%s)", params(t.Params))
		if len(t.Uses) > 0 {
			uses := make([]string, len(t.Uses))
			for i, u := range t.Uses {
				s := "$" + u.Name
				if u.ByRef {
					s = "&" + s
				}
				uses[i] = s
			}
			p.writef(" use (%s)", strings.Join(uses, ", "))
		}
		p.b.WriteString(" { ")
		sub := &printer{}
		if t.Body != nil {
			for _, s := range t.Body.Stmts {
				sub.stmt(s)
			}
		}
		p.b.WriteString(strings.ReplaceAll(sub.b.String(), "\n", " "))
		p.b.WriteString("}")
	case *InstanceofExpr:
		p.writef("%s instanceof %s", maybeParen(t.X), orStatic(t.Class))
	case *MatchExpr:
		p.writef("match (%s) { ", PrintExprSrc(t.Subject))
		for i, arm := range t.Arms {
			if i > 0 {
				p.b.WriteString(", ")
			}
			if arm.Conds == nil {
				p.b.WriteString("default")
			} else {
				p.b.WriteString(exprList(arm.Conds))
			}
			p.writef(" => %s", maybeParen(arm.Result))
		}
		p.b.WriteString(" }")
	case *BadExpr:
		p.b.WriteString("null /* bad expr */")
	default:
		p.b.WriteString("null /* unknown expr */")
	}
}

// maybeParen parenthesizes compound sub-expressions.
func maybeParen(e Expr) string {
	s := PrintExprSrc(e)
	switch e.(type) {
	case *BinaryExpr, *TernaryExpr, *AssignExpr, *InstanceofExpr,
		*IncludeExpr, *PrintExpr, *InterpString:
		return "(" + s + ")"
	}
	return s
}

func orStatic(class string) string {
	if class == "" {
		return "static"
	}
	return class
}

// quote renders a single-quoted PHP string with escapes; control characters
// force double quotes.
func quote(s string) string {
	if strings.ContainsAny(s, "\n\r\t\x00\x1b") {
		var b strings.Builder
		b.WriteByte('"')
		for i := 0; i < len(s); i++ {
			switch c := s[i]; c {
			case '\n':
				b.WriteString(`\n`)
			case '\r':
				b.WriteString(`\r`)
			case '\t':
				b.WriteString(`\t`)
			case 0:
				b.WriteString(`\0`)
			case 0x1b:
				b.WriteString(`\e`)
			case '"', '\\', '$':
				b.WriteByte('\\')
				b.WriteByte(c)
			default:
				b.WriteByte(c)
			}
		}
		b.WriteByte('"')
		return b.String()
	}
	return "'" + strings.NewReplacer("\\", "\\\\", "'", "\\'").Replace(s) + "'"
}
