// Package token defines the lexical tokens of the PHP subset understood by
// the analyzer, together with source positions.
//
// The set is deliberately pragmatic: it covers the constructs that occur in
// the data flows WAP analyses (variables, superglobals, strings with
// interpolation, calls, control flow, classes) rather than the full PHP
// grammar.
package token

import "strconv"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Enum starts at one so the zero value is invalid and easy to
// spot in tests.
const (
	Invalid Kind = iota + 1

	EOF
	InlineHTML // raw text outside <?php ... ?>

	// Literals and identifiers.
	Ident          // echo_result, MyClass, mysql_query
	Variable       // $foo (value holds "foo", without the $)
	IntLit         // 123, 0x1F, 0o17, 0b101
	FloatLit       // 1.5, 1e3
	StringLit      // 'single quoted' or fully-literal double quoted
	TemplateString // double-quoted or heredoc string containing interpolation
	CastIntKw      // (int) / (integer)
	CastFloatKw    // (float) / (double) / (real)
	CastStringKw   // (string)
	CastBoolKw     // (bool) / (boolean)
	CastArrayKw    // (array)
	CastObjectKw   // (object)

	// Operators and delimiters.
	Plus         // +
	Minus        // -
	Star         // *
	Slash        // /
	Percent      // %
	Pow          // **
	Dot          // .
	Assign       // =
	PlusEq       // +=
	MinusEq      // -=
	StarEq       // *=
	SlashEq      // /=
	PercentEq    // %=
	DotEq        // .=
	CoalesceEq   // ??=
	AmpEq        // &=
	PipeEq       // |=
	CaretEq      // ^=
	ShlEq        // <<=
	ShrEq        // >>=
	Inc          // ++
	Dec          // --
	Eq           // ==
	NotEq        // != or <>
	Identical    // ===
	NotIdentical // !==
	Lt           // <
	Gt           // >
	LtEq         // <=
	GtEq         // >=
	Spaceship    // <=>
	AndAnd       // &&
	OrOr         // ||
	Not          // !
	Amp          // &
	Pipe         // |
	Caret        // ^
	Tilde        // ~
	Shl          // <<
	Shr          // >>
	Question     // ?
	Coalesce     // ??
	Colon        // :
	DoubleColon  // ::
	Semicolon    // ;
	Comma        // ,
	Arrow        // ->
	NullArrow    // ?->
	DoubleArrow  // =>
	At           // @
	Dollar       // $ (for variable variables $$x)
	Backslash    // \ (namespace separator)
	Ellipsis     // ...
	Attribute    // #[ (attribute start; skipped by parser)

	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBracket // [
	RBracket // ]

	// Keywords.
	KwAbstract
	KwArray
	KwAs
	KwBreak
	KwCase
	KwCatch
	KwClass
	KwClone
	KwConst
	KwContinue
	KwDeclare
	KwDefault
	KwDo
	KwEcho
	KwElse
	KwElseif
	KwEmpty
	KwEnddeclare
	KwEndfor
	KwEndforeach
	KwEndif
	KwEndswitch
	KwEndwhile
	KwExit // exit and die
	KwExtends
	KwFalse
	KwFinal
	KwFinally
	KwFn
	KwFor
	KwForeach
	KwFunction
	KwGlobal
	KwIf
	KwImplements
	KwInclude
	KwIncludeOnce
	KwInstanceof
	KwInterface
	KwIsset
	KwList
	KwNamespace
	KwNew
	KwNull
	KwPrint
	KwPrivate
	KwProtected
	KwPublic
	KwRequire
	KwRequireOnce
	KwReturn
	KwStatic
	KwSwitch
	KwThrow
	KwTrue
	KwTry
	KwUnset
	KwUse
	KwVar
	KwWhile
	KwAndKw // "and"
	KwOrKw  // "or"
	KwXorKw // "xor"
)

var kindNames = map[Kind]string{
	Invalid:        "Invalid",
	EOF:            "EOF",
	InlineHTML:     "InlineHTML",
	Ident:          "Ident",
	Variable:       "Variable",
	IntLit:         "IntLit",
	FloatLit:       "FloatLit",
	StringLit:      "StringLit",
	TemplateString: "TemplateString",
	CastIntKw:      "(int)",
	CastFloatKw:    "(float)",
	CastStringKw:   "(string)",
	CastBoolKw:     "(bool)",
	CastArrayKw:    "(array)",
	CastObjectKw:   "(object)",
	Plus:           "+",
	Minus:          "-",
	Star:           "*",
	Slash:          "/",
	Percent:        "%",
	Pow:            "**",
	Dot:            ".",
	Assign:         "=",
	PlusEq:         "+=",
	MinusEq:        "-=",
	StarEq:         "*=",
	SlashEq:        "/=",
	PercentEq:      "%=",
	DotEq:          ".=",
	CoalesceEq:     "??=",
	AmpEq:          "&=",
	PipeEq:         "|=",
	CaretEq:        "^=",
	ShlEq:          "<<=",
	ShrEq:          ">>=",
	Inc:            "++",
	Dec:            "--",
	Eq:             "==",
	NotEq:          "!=",
	Identical:      "===",
	NotIdentical:   "!==",
	Lt:             "<",
	Gt:             ">",
	LtEq:           "<=",
	GtEq:           ">=",
	Spaceship:      "<=>",
	AndAnd:         "&&",
	OrOr:           "||",
	Not:            "!",
	Amp:            "&",
	Pipe:           "|",
	Caret:          "^",
	Tilde:          "~",
	Shl:            "<<",
	Shr:            ">>",
	Question:       "?",
	Coalesce:       "??",
	Colon:          ":",
	DoubleColon:    "::",
	Semicolon:      ";",
	Comma:          ",",
	Arrow:          "->",
	NullArrow:      "?->",
	DoubleArrow:    "=>",
	At:             "@",
	Dollar:         "$",
	Backslash:      "\\",
	Ellipsis:       "...",
	Attribute:      "#[",
	LParen:         "(",
	RParen:         ")",
	LBrace:         "{",
	RBrace:         "}",
	LBracket:       "[",
	RBracket:       "]",
	KwAbstract:     "abstract",
	KwArray:        "array",
	KwAs:           "as",
	KwBreak:        "break",
	KwCase:         "case",
	KwCatch:        "catch",
	KwClass:        "class",
	KwClone:        "clone",
	KwConst:        "const",
	KwContinue:     "continue",
	KwDeclare:      "declare",
	KwDefault:      "default",
	KwDo:           "do",
	KwEcho:         "echo",
	KwElse:         "else",
	KwElseif:       "elseif",
	KwEmpty:        "empty",
	KwEnddeclare:   "enddeclare",
	KwEndfor:       "endfor",
	KwEndforeach:   "endforeach",
	KwEndif:        "endif",
	KwEndswitch:    "endswitch",
	KwEndwhile:     "endwhile",
	KwExit:         "exit",
	KwExtends:      "extends",
	KwFalse:        "false",
	KwFinal:        "final",
	KwFinally:      "finally",
	KwFn:           "fn",
	KwFor:          "for",
	KwForeach:      "foreach",
	KwFunction:     "function",
	KwGlobal:       "global",
	KwIf:           "if",
	KwImplements:   "implements",
	KwInclude:      "include",
	KwIncludeOnce:  "include_once",
	KwInstanceof:   "instanceof",
	KwInterface:    "interface",
	KwIsset:        "isset",
	KwList:         "list",
	KwNamespace:    "namespace",
	KwNew:          "new",
	KwNull:         "null",
	KwPrint:        "print",
	KwPrivate:      "private",
	KwProtected:    "protected",
	KwPublic:       "public",
	KwRequire:      "require",
	KwRequireOnce:  "require_once",
	KwReturn:       "return",
	KwStatic:       "static",
	KwSwitch:       "switch",
	KwThrow:        "throw",
	KwTrue:         "true",
	KwTry:          "try",
	KwUnset:        "unset",
	KwUse:          "use",
	KwVar:          "var",
	KwWhile:        "while",
	KwAndKw:        "and",
	KwOrKw:         "or",
	KwXorKw:        "xor",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return "Kind(" + strconv.Itoa(int(k)) + ")"
}

// keywords maps lower-cased PHP keywords to their kinds. PHP keywords are
// case-insensitive; the lexer lower-cases before lookup.
var keywords = map[string]Kind{
	"abstract":     KwAbstract,
	"array":        KwArray,
	"as":           KwAs,
	"break":        KwBreak,
	"case":         KwCase,
	"catch":        KwCatch,
	"class":        KwClass,
	"clone":        KwClone,
	"const":        KwConst,
	"continue":     KwContinue,
	"declare":      KwDeclare,
	"default":      KwDefault,
	"die":          KwExit,
	"do":           KwDo,
	"echo":         KwEcho,
	"else":         KwElse,
	"elseif":       KwElseif,
	"empty":        KwEmpty,
	"enddeclare":   KwEnddeclare,
	"endfor":       KwEndfor,
	"endforeach":   KwEndforeach,
	"endif":        KwEndif,
	"endswitch":    KwEndswitch,
	"endwhile":     KwEndwhile,
	"exit":         KwExit,
	"extends":      KwExtends,
	"false":        KwFalse,
	"final":        KwFinal,
	"finally":      KwFinally,
	"fn":           KwFn,
	"for":          KwFor,
	"foreach":      KwForeach,
	"function":     KwFunction,
	"global":       KwGlobal,
	"if":           KwIf,
	"implements":   KwImplements,
	"include":      KwInclude,
	"include_once": KwIncludeOnce,
	"instanceof":   KwInstanceof,
	"interface":    KwInterface,
	"isset":        KwIsset,
	"list":         KwList,
	"namespace":    KwNamespace,
	"new":          KwNew,
	"null":         KwNull,
	"print":        KwPrint,
	"private":      KwPrivate,
	"protected":    KwProtected,
	"public":       KwPublic,
	"require":      KwRequire,
	"require_once": KwRequireOnce,
	"return":       KwReturn,
	"static":       KwStatic,
	"switch":       KwSwitch,
	"throw":        KwThrow,
	"true":         KwTrue,
	"try":          KwTry,
	"unset":        KwUnset,
	"use":          KwUse,
	"var":          KwVar,
	"while":        KwWhile,
	"and":          KwAndKw,
	"or":           KwOrKw,
	"xor":          KwXorKw,
}

// Lookup maps an identifier to its keyword kind, or returns Ident when the
// name is not a keyword. The name must already be lower-cased.
func Lookup(lower string) Kind {
	if k, ok := keywords[lower]; ok {
		return k
	}
	return Ident
}

// maxKeywordLen is the length of the longest keyword ("include_once"); any
// longer name cannot be a keyword regardless of case.
const maxKeywordLen = 12

// LookupFold is Lookup for identifiers in their original spelling: PHP
// keywords are case-insensitive, and LookupFold folds ASCII case without
// allocating. Non-ASCII bytes can never match the all-ASCII keyword set, so
// they pass through unfolded.
func LookupFold(name string) Kind {
	needFold := false
	for i := 0; i < len(name); i++ {
		if c := name[i]; c >= 'A' && c <= 'Z' {
			needFold = true
			break
		}
	}
	if !needFold {
		return Lookup(name)
	}
	if len(name) > maxKeywordLen {
		return Ident
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	// map[string([]byte)] lookups do not allocate; the compiler keeps the
	// conversion on the stack.
	if k, ok := keywords[string(buf[:len(name)])]; ok {
		return k
	}
	return Ident
}

// IsKeyword reports whether k is a keyword kind.
func (k Kind) IsKeyword() bool { return k >= KwAbstract && k <= KwXorKw }

// IsCast reports whether k is a cast pseudo-token.
func (k Kind) IsCast() bool { return k >= CastIntKw && k <= CastObjectKw }

// IsAssignOp reports whether k is an assignment operator (including compound
// assignments such as .=).
func (k Kind) IsAssignOp() bool {
	switch k {
	case Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, DotEq,
		CoalesceEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq:
		return true
	}
	return false
}

// Position is a source location. Offsets are byte-based; Line and Column are
// one-based (Column counts bytes, which is adequate for fix insertion).
type Position struct {
	File   string
	Offset int
	Line   int
	Column int
}

// IsValid reports whether the position has been set.
func (p Position) IsValid() bool { return p.Line > 0 }

// String renders the position as file:line:column.
func (p Position) String() string {
	s := p.File
	if s == "" {
		s = "<src>"
	}
	s += ":" + strconv.Itoa(p.Line)
	if p.Column > 0 {
		s += ":" + strconv.Itoa(p.Column)
	}
	return s
}

// Token is a single lexical token.
type Token struct {
	Kind Kind
	// Value is the semantic payload: identifier name, variable name without
	// the $, string content (after escape processing for literal parts),
	// numeric text for number literals, raw text for InlineHTML.
	Value string
	// Parts is set for TemplateString tokens: the interleaved literal and
	// interpolated fragments, in order.
	Parts []TemplatePart
	Pos   Position
	// End is the position one past the last byte of the token.
	End Position
}

// TemplatePart is one fragment of an interpolated string.
type TemplatePart struct {
	// Literal is the raw text when this part is not an interpolation.
	Literal string
	// Var is the variable name (without $) when this part interpolates a
	// variable; Index and Prop further qualify $arr[key] and $obj->prop
	// forms.
	Var   string
	Index string // array key inside the interpolation, "" if none
	Prop  string // property name inside the interpolation, "" if none
	// Expr holds raw PHP source for complex ${...} / {$...} interpolations;
	// the parser re-lexes it when needed.
	Expr string
	// IsVar reports whether the part is an interpolation.
	IsVar bool
}
