package token

import (
	"strings"
	"testing"
)

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"echo":         KwEcho,
		"if":           KwIf,
		"die":          KwExit,
		"exit":         KwExit,
		"include_once": KwIncludeOnce,
		"and":          KwAndKw,
		"not_keyword":  Ident,
	}
	for name, want := range cases {
		if got := Lookup(name); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestLookupFoldAgreesWithLookup checks LookupFold against the reference
// Lookup(strings.ToLower(...)) over every keyword in several casings plus
// boundary non-keywords.
func TestLookupFoldAgreesWithLookup(t *testing.T) {
	titleCase := func(s string) string {
		if s == "" {
			return s
		}
		return strings.ToUpper(s[:1]) + s[1:]
	}
	names := make([]string, 0, len(keywords)*3+10)
	for kw := range keywords {
		names = append(names, kw, strings.ToUpper(kw), titleCase(kw))
	}
	names = append(names,
		"not_keyword", "NOT_KEYWORD", "MyClass",
		"include_oncex", "INCLUDE_ONCEX", // longer than any keyword
		"Überklasse", "ÜBER", // non-ASCII can never be a keyword
		"", "e", "E",
	)
	for _, name := range names {
		if got, want := LookupFold(name), Lookup(strings.ToLower(name)); got != want {
			t.Errorf("LookupFold(%q) = %v, want %v", name, got, want)
		}
	}
	if len("include_once") != maxKeywordLen {
		t.Errorf("maxKeywordLen = %d, but include_once is %d bytes", maxKeywordLen, len("include_once"))
	}
	for kw := range keywords {
		if len(kw) > maxKeywordLen {
			t.Errorf("keyword %q longer than maxKeywordLen=%d", kw, maxKeywordLen)
		}
	}
}

// TestLookupFoldDoesNotAllocate pins the point of LookupFold: folding
// mixed-case identifiers on the stack.
func TestLookupFoldDoesNotAllocate(t *testing.T) {
	inputs := []string{"ECHO", "MyClass", "include_ONCE", "while", "AVeryLongIdentifierName"}
	allocs := testing.AllocsPerRun(100, func() {
		for _, in := range inputs {
			LookupFold(in)
		}
	})
	if allocs != 0 {
		t.Errorf("LookupFold allocated %v times per run, want 0", allocs)
	}
}

func TestKindStringCoversEveryKind(t *testing.T) {
	for k := Invalid; k <= KwXorKw; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestPredicates(t *testing.T) {
	if !KwWhile.IsKeyword() || StringLit.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	for _, k := range []Kind{CastIntKw, CastFloatKw, CastStringKw, CastBoolKw, CastArrayKw, CastObjectKw} {
		if !k.IsCast() {
			t.Errorf("%v should be a cast", k)
		}
	}
	assigns := []Kind{Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, DotEq, CoalesceEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq}
	for _, k := range assigns {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment operator", k)
		}
	}
	if Eq.IsAssignOp() || Identical.IsAssignOp() {
		t.Error("comparisons are not assignments")
	}
}

func TestPositionRendering(t *testing.T) {
	p := Position{File: "x.php", Line: 2, Column: 9}
	if p.String() != "x.php:2:9" {
		t.Errorf("pos = %q", p.String())
	}
	if !p.IsValid() {
		t.Error("positive line must be valid")
	}
	noCol := Position{File: "x.php", Line: 2}
	if noCol.String() != "x.php:2" {
		t.Errorf("pos without column = %q", noCol.String())
	}
}
