package token

import "testing"

func TestLookupKeywords(t *testing.T) {
	cases := map[string]Kind{
		"echo":         KwEcho,
		"if":           KwIf,
		"die":          KwExit,
		"exit":         KwExit,
		"include_once": KwIncludeOnce,
		"and":          KwAndKw,
		"not_keyword":  Ident,
	}
	for name, want := range cases {
		if got := Lookup(name); got != want {
			t.Errorf("Lookup(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestKindStringCoversEveryKind(t *testing.T) {
	for k := Invalid; k <= KwXorKw; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
}

func TestPredicates(t *testing.T) {
	if !KwWhile.IsKeyword() || StringLit.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	for _, k := range []Kind{CastIntKw, CastFloatKw, CastStringKw, CastBoolKw, CastArrayKw, CastObjectKw} {
		if !k.IsCast() {
			t.Errorf("%v should be a cast", k)
		}
	}
	assigns := []Kind{Assign, PlusEq, MinusEq, StarEq, SlashEq, PercentEq, DotEq, CoalesceEq, AmpEq, PipeEq, CaretEq, ShlEq, ShrEq}
	for _, k := range assigns {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment operator", k)
		}
	}
	if Eq.IsAssignOp() || Identical.IsAssignOp() {
		t.Error("comparisons are not assignments")
	}
}

func TestPositionRendering(t *testing.T) {
	p := Position{File: "x.php", Line: 2, Column: 9}
	if p.String() != "x.php:2:9" {
		t.Errorf("pos = %q", p.String())
	}
	if !p.IsValid() {
		t.Error("positive line must be valid")
	}
	noCol := Position{File: "x.php", Line: 2}
	if noCol.String() != "x.php:2" {
		t.Errorf("pos without column = %q", noCol.String())
	}
}
