package lexer

import (
	"strings"
	"testing"

	"repro/internal/php/token"
)

// Additional lexical coverage: escapes, edge cases around tags, and odd but
// legal token sequences.

func TestAllEscapeSequences(t *testing.T) {
	toks := lexAll(t, `<?php "\n\t\r\v\f\e\0\\\$\"";`)
	if toks[0].Kind != token.StringLit {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
	want := "\n\t\r\v\f\x1b\x00\\$\""
	if toks[0].Value != want {
		t.Errorf("value = %q, want %q", toks[0].Value, want)
	}
}

func TestUnknownEscapeKeptVerbatim(t *testing.T) {
	toks := lexAll(t, `<?php "\q";`)
	if toks[0].Value != `\q` {
		t.Errorf("value = %q", toks[0].Value)
	}
}

func TestCloseTagInsideStringIsContent(t *testing.T) {
	toks := lexAll(t, `<?php $s = "contains ?> inside";`)
	if toks[2].Kind != token.StringLit || !strings.Contains(toks[2].Value, "?>") {
		t.Errorf("token = %+v", toks[2])
	}
}

func TestCloseTagInsideLineCommentEndsPHP(t *testing.T) {
	// PHP line comments end at ?>.
	toks := lexAll(t, "<?php $a = 1; // trailing ?>html")
	last := toks[len(toks)-2]
	if last.Kind != token.InlineHTML || last.Value != "html" {
		t.Errorf("tail = %+v", last)
	}
}

func TestShortOpenTag(t *testing.T) {
	toks := lexAll(t, "<? echo $x; ?>")
	if toks[0].Kind != token.KwEcho {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestNewlineAfterCloseTagSwallowed(t *testing.T) {
	toks := lexAll(t, "<?php $a = 1; ?>\nhtml")
	var html *token.Token
	for i := range toks {
		if toks[i].Kind == token.InlineHTML {
			html = &toks[i]
		}
	}
	if html == nil || html.Value != "html" {
		t.Errorf("html token = %+v", html)
	}
}

func TestHexBinaryOctalNumbers(t *testing.T) {
	toks := lexAll(t, "<?php 0xFF; 0b1010; 0o777; 0O17;")
	for i := 0; i < 8; i += 2 {
		if toks[i].Kind != token.IntLit {
			t.Errorf("token %d = %v", i, toks[i].Kind)
		}
	}
}

func TestDollarBrace(t *testing.T) {
	toks := lexAll(t, `<?php ${'dyn'} = 1;`)
	if toks[0].Kind != token.Dollar || toks[1].Kind != token.LBrace {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestHeredocWithIndentedTerminator(t *testing.T) {
	src := "<?php $x = <<<EOT\nline one\n    EOT;\n"
	toks := lexAll(t, src)
	if toks[2].Kind != token.StringLit && toks[2].Kind != token.TemplateString {
		t.Fatalf("kind = %v", toks[2].Kind)
	}
}

func TestHeredocLabelPrefixNotTerminator(t *testing.T) {
	// EOTX must not terminate an EOT heredoc.
	src := "<?php $x = <<<EOT\nEOTX is content\nEOT;\n"
	toks := lexAll(t, src)
	v := toks[2].Value
	if toks[2].Kind == token.TemplateString {
		v = toks[2].Parts[0].Literal
	}
	if !strings.Contains(v, "EOTX") {
		t.Errorf("heredoc body = %q", v)
	}
}

func TestInterpolationFollowedByIdentChar(t *testing.T) {
	toks := lexAll(t, `<?php "pre${x}post";`)
	tok := toks[0]
	if tok.Kind != token.TemplateString {
		t.Fatalf("kind = %v", tok.Kind)
	}
	joined := ""
	for _, p := range tok.Parts {
		if !p.IsVar {
			joined += p.Literal
		}
	}
	if joined != "prepost" {
		t.Errorf("literals = %q", joined)
	}
}

func TestBlockCommentUnterminatedError(t *testing.T) {
	_, errs := Tokens("t.php", "<?php /* never closed")
	if len(errs) == 0 {
		t.Error("want error")
	}
}

func TestEmptyInput(t *testing.T) {
	toks, errs := Tokens("t.php", "")
	if len(errs) != 0 || len(toks) != 1 || toks[0].Kind != token.EOF {
		t.Errorf("toks = %v errs = %v", kinds(toks), errs)
	}
}

func TestOnlyOpenTag(t *testing.T) {
	toks := lexAll(t, "<?php")
	if toks[0].Kind != token.EOF {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestOperatorAdjacency(t *testing.T) {
	// "1+++$x" lexes as 1 ++ + $x (maximal munch).
	toks := lexAll(t, "<?php 1+++$x;")
	want := []token.Kind{token.IntLit, token.Inc, token.Plus, token.Variable, token.Semicolon, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordLookup(t *testing.T) {
	if token.Lookup("echo") != token.KwEcho {
		t.Error("echo lookup failed")
	}
	if token.Lookup("die") != token.KwExit {
		t.Error("die must map to exit")
	}
	if token.Lookup("not_a_keyword") != token.Ident {
		t.Error("non-keyword must be Ident")
	}
}

func TestKindStringAndPredicates(t *testing.T) {
	if token.KwEcho.String() != "echo" || token.Plus.String() != "+" {
		t.Error("kind names wrong")
	}
	if !token.KwIf.IsKeyword() || token.Plus.IsKeyword() {
		t.Error("IsKeyword wrong")
	}
	if !token.CastIntKw.IsCast() || token.Plus.IsCast() {
		t.Error("IsCast wrong")
	}
	if !token.DotEq.IsAssignOp() || token.Eq.IsAssignOp() {
		t.Error("IsAssignOp wrong")
	}
	if token.Kind(9999).String() == "" {
		t.Error("unknown kind should render")
	}
}

func TestPositionString(t *testing.T) {
	p := token.Position{File: "a.php", Line: 3, Column: 7}
	if p.String() != "a.php:3:7" {
		t.Errorf("pos = %q", p.String())
	}
	if (token.Position{}).IsValid() {
		t.Error("zero position must be invalid")
	}
	anon := token.Position{Line: 1}
	if !strings.Contains(anon.String(), "<src>") {
		t.Errorf("anon pos = %q", anon.String())
	}
}
