// Package lexer converts PHP source text into a stream of tokens.
//
// The lexer understands mixed HTML/PHP files: text outside `<?php ... ?>`
// regions is emitted as a single InlineHTML token per region. Inside PHP
// regions it handles single- and double-quoted strings (with variable
// interpolation), heredoc/nowdoc, line and block comments, casts, and all
// operators used by the parser.
package lexer

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/php/token"
)

// Error describes a lexical error at a specific position.
type Error struct {
	Pos token.Position
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans PHP source text. Create one with New and call Next until it
// returns a token with kind EOF.
type Lexer struct {
	src     string
	file    string
	off     int
	line    int
	col     int
	inPHP   bool
	errs    []*Error
	pending []token.Token // queued tokens (used by openTag handling)
}

// New returns a lexer for src. The file name is used in positions only.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// pool recycles Lexer structs across files. A pooled lexer is fully zeroed on
// release so no source text, tokens, or errors can leak into the next file.
var pool = sync.Pool{New: func() any { return new(Lexer) }}

// newPooled returns a recycled lexer initialised for src. Pair with release.
func newPooled(file, src string) *Lexer {
	l := pool.Get().(*Lexer)
	*l = Lexer{src: src, file: file, line: 1, col: 1}
	return l
}

// release scrubs every reference held by the lexer (source, errors, pending
// tokens) and returns it to the pool. The caller must copy out l.errs first.
func (l *Lexer) release() {
	*l = Lexer{}
	pool.Put(l)
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []*Error { return l.errs }

// TokenCapHint sizes a token buffer from the source length: PHP averages
// roughly one token per six bytes, and the constant floor absorbs tiny files.
func TokenCapHint(srcLen int) int { return srcLen/6 + 16 }

// Tokens scans the whole input and returns every token including the final
// EOF token.
func Tokens(file, src string) ([]token.Token, []*Error) {
	return TokensAppend(file, src, make([]token.Token, 0, TokenCapHint(len(src))))
}

// TokensAppend scans the whole input, appending every token including the
// final EOF token to buf, and returns the extended slice. The lexer itself is
// recycled through an internal pool; ownership of buf stays with the caller,
// which lets callers reuse token buffers across files.
func TokensAppend(file, src string, buf []token.Token) ([]token.Token, []*Error) {
	l := newPooled(file, src)
	for {
		t := l.Next()
		buf = append(buf, t)
		if t.Kind == token.EOF {
			break
		}
	}
	errs := l.errs
	l.release()
	return buf, errs
}

func (l *Lexer) pos() token.Position {
	return token.Position{File: l.file, Offset: l.off, Line: l.line, Column: l.col}
}

func (l *Lexer) errorf(pos token.Position, format string, args ...any) {
	l.errs = append(l.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// peek returns the byte at offset off+n without consuming, or 0 at EOF.
func (l *Lexer) peek(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

// advance consumes n bytes, maintaining line/column.
func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.off < len(l.src); i++ {
		if l.src[l.off] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.off++
	}
}

func (l *Lexer) eof() bool { return l.off >= len(l.src) }

// prefixAt reports whether prefix begins at byte offset off. Index-based so
// hot paths compare in place instead of materialising l.src[l.off:] slice
// headers for strings.HasPrefix.
func (l *Lexer) prefixAt(off int, prefix string) bool {
	return off+len(prefix) <= len(l.src) && l.src[off:off+len(prefix)] == prefix
}

// Next returns the next token.
func (l *Lexer) Next() token.Token {
	if len(l.pending) > 0 {
		t := l.pending[0]
		l.pending = l.pending[1:]
		return t
	}
	if !l.inPHP {
		return l.scanHTML()
	}
	l.skipSpaceAndComments()
	if l.eof() {
		return l.tok(token.EOF, "")
	}
	return l.scanPHP()
}

func (l *Lexer) tok(k token.Kind, v string) token.Token {
	p := l.pos()
	return token.Token{Kind: k, Value: v, Pos: p, End: p}
}

// scanHTML consumes inline HTML up to the next <?php / <?= / <? open tag.
func (l *Lexer) scanHTML() token.Token {
	start := l.pos()
	rest := l.src[l.off:]
	idx := strings.Index(rest, "<?")
	if idx < 0 {
		// Rest of file is HTML.
		l.advance(len(rest))
		if rest == "" {
			return token.Token{Kind: token.EOF, Pos: start, End: start}
		}
		return token.Token{Kind: token.InlineHTML, Value: rest, Pos: start, End: l.pos()}
	}
	html := rest[:idx]
	l.advance(idx)
	openPos := l.pos()
	// Determine tag form.
	var echoTag bool
	switch {
	case l.prefixAt(l.off, "<?php"):
		l.advance(5)
	case l.prefixAt(l.off, "<?="):
		l.advance(3)
		echoTag = true
	default:
		l.advance(2) // short open tag
	}
	l.inPHP = true
	if echoTag {
		// <?= expr ?> is sugar for echo expr;
		l.pending = append(l.pending, token.Token{Kind: token.KwEcho, Value: "echo", Pos: openPos, End: openPos})
	}
	if html != "" {
		return token.Token{Kind: token.InlineHTML, Value: html, Pos: start, End: openPos}
	}
	// No HTML before the tag: continue scanning PHP directly.
	return l.Next()
}

func (l *Lexer) skipSpaceAndComments() {
	for !l.eof() {
		c := l.src[l.off]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '/' && l.peek(1) == '/':
			l.skipLineComment()
		case c == '#' && l.peek(1) == '[':
			l.skipAttribute()
		case c == '#':
			l.skipLineComment()
		case c == '/' && l.peek(1) == '*':
			l.skipBlockComment()
		default:
			return
		}
	}
}

// skipLineComment consumes to end of line or a closing ?> tag (PHP line
// comments end at ?>).
func (l *Lexer) skipLineComment() {
	for !l.eof() {
		if l.src[l.off] == '\n' {
			return
		}
		if l.src[l.off] == '?' && l.peek(1) == '>' {
			return // leave tag for scanPHP to handle
		}
		l.advance(1)
	}
}

func (l *Lexer) skipBlockComment() {
	pos := l.pos()
	l.advance(2)
	for !l.eof() {
		if l.src[l.off] == '*' && l.peek(1) == '/' {
			l.advance(2)
			return
		}
		l.advance(1)
	}
	l.errorf(pos, "unterminated block comment")
}

// skipAttribute consumes a #[...] attribute, tracking bracket nesting.
func (l *Lexer) skipAttribute() {
	l.advance(2)
	depth := 1
	for !l.eof() && depth > 0 {
		switch l.src[l.off] {
		case '[':
			depth++
		case ']':
			depth--
		}
		l.advance(1)
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 0x80 ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) scanPHP() token.Token {
	start := l.pos()
	c := l.src[l.off]

	// Close tag.
	if c == '?' && l.peek(1) == '>' {
		l.advance(2)
		// PHP swallows one newline immediately after ?>.
		if !l.eof() && l.src[l.off] == '\n' {
			l.advance(1)
		}
		l.inPHP = false
		// A close tag terminates the current statement like a semicolon.
		return token.Token{Kind: token.Semicolon, Value: ";", Pos: start, End: l.pos()}
	}

	switch {
	case c == '$':
		if isIdentStart(l.peek(1)) {
			l.advance(1)
			name := l.scanIdentText()
			return token.Token{Kind: token.Variable, Value: name, Pos: start, End: l.pos()}
		}
		l.advance(1)
		return token.Token{Kind: token.Dollar, Value: "$", Pos: start, End: l.pos()}
	case isIdentStart(c):
		name := l.scanIdentText()
		kind := token.LookupFold(name)
		return token.Token{Kind: kind, Value: name, Pos: start, End: l.pos()}
	case isDigit(c), c == '.' && isDigit(l.peek(1)):
		return l.scanNumber(start)
	case c == '\'':
		return l.scanSingleQuoted(start)
	case c == '"':
		return l.scanDoubleQuoted(start)
	case c == '`':
		// Shell-exec backticks: treat like a template string so taint can
		// flow into the implicit shell_exec sink via the parser.
		return l.scanBacktick(start)
	case c == '<' && l.peek(1) == '<' && l.peek(2) == '<':
		return l.scanHeredoc(start)
	}

	return l.scanOperator(start)
}

func (l *Lexer) scanIdentText() string {
	s := l.off
	for !l.eof() && isIdentPart(l.src[l.off]) {
		l.advance(1)
	}
	return l.src[s:l.off]
}

func (l *Lexer) scanNumber(start token.Position) token.Token {
	s := l.off
	kind := token.IntLit
	if l.src[l.off] == '0' && (l.peek(1) == 'x' || l.peek(1) == 'X') {
		l.advance(2)
		for !l.eof() && (isDigit(l.src[l.off]) || isHexLetter(l.src[l.off]) || l.src[l.off] == '_') {
			l.advance(1)
		}
		return token.Token{Kind: kind, Value: l.src[s:l.off], Pos: start, End: l.pos()}
	}
	if l.src[l.off] == '0' && (l.peek(1) == 'b' || l.peek(1) == 'B' || l.peek(1) == 'o' || l.peek(1) == 'O') {
		l.advance(2)
		for !l.eof() && (isDigit(l.src[l.off]) || l.src[l.off] == '_') {
			l.advance(1)
		}
		return token.Token{Kind: kind, Value: l.src[s:l.off], Pos: start, End: l.pos()}
	}
	digits := func() {
		for !l.eof() && (isDigit(l.src[l.off]) || l.src[l.off] == '_') {
			l.advance(1)
		}
	}
	digits()
	if !l.eof() && l.src[l.off] == '.' && isDigit(l.peek(1)) {
		kind = token.FloatLit
		l.advance(1)
		digits()
	}
	if !l.eof() && (l.src[l.off] == 'e' || l.src[l.off] == 'E') {
		n := 1
		if l.peek(1) == '+' || l.peek(1) == '-' {
			n = 2
		}
		if isDigit(l.peek(n)) {
			kind = token.FloatLit
			l.advance(n)
			digits()
		}
	}
	return token.Token{Kind: kind, Value: l.src[s:l.off], Pos: start, End: l.pos()}
}

func isHexLetter(c byte) bool {
	return (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) scanSingleQuoted(start token.Position) token.Token {
	l.advance(1)
	// Fast path: no escapes before the closing quote, so the value is a slice
	// of the source and the token allocates nothing.
	s := l.off
	i := s
	for i < len(l.src) && l.src[i] != '\'' && l.src[i] != '\\' {
		i++
	}
	if i < len(l.src) && l.src[i] == '\'' {
		l.advance(i - s + 1)
		return token.Token{Kind: token.StringLit, Value: l.src[s:i], Pos: start, End: l.pos()}
	}
	// Slow path: escape processing (or unterminated literal).
	var b strings.Builder
	b.WriteString(l.src[s:i])
	l.advance(i - s)
	for !l.eof() {
		c := l.src[l.off]
		if c == '\\' {
			next := l.peek(1)
			if next == '\'' || next == '\\' {
				b.WriteByte(next)
				l.advance(2)
				continue
			}
			b.WriteByte(c)
			l.advance(1)
			continue
		}
		if c == '\'' {
			l.advance(1)
			return token.Token{Kind: token.StringLit, Value: b.String(), Pos: start, End: l.pos()}
		}
		b.WriteByte(c)
		l.advance(1)
	}
	l.errorf(start, "unterminated string literal")
	return token.Token{Kind: token.StringLit, Value: b.String(), Pos: start, End: l.pos()}
}

// scanDoubleQuoted scans a double-quoted string, splitting interpolations
// into template parts. If no interpolation occurs the token is a plain
// StringLit.
func (l *Lexer) scanDoubleQuoted(start token.Position) token.Token {
	l.advance(1)
	parts, ok := l.scanInterpolated('"')
	if !ok {
		l.errorf(start, "unterminated string literal")
	}
	return l.templateToken(start, parts)
}

func (l *Lexer) scanBacktick(start token.Position) token.Token {
	l.advance(1)
	parts, ok := l.scanInterpolated('`')
	if !ok {
		l.errorf(start, "unterminated backtick expression")
	}
	t := l.templateToken(start, parts)
	// Mark backtick strings with a synthetic value so the parser can wrap
	// them in a shell_exec call.
	t.Value = "`shell`"
	if t.Kind == token.StringLit {
		t.Kind = token.TemplateString
		t.Parts = []token.TemplatePart{{Literal: t.Value}}
	}
	return t
}

// templateToken builds a StringLit (no interpolation) or TemplateString.
func (l *Lexer) templateToken(start token.Position, parts []token.TemplatePart) token.Token {
	interp := false
	for _, p := range parts {
		if p.IsVar {
			interp = true
			break
		}
	}
	if !interp {
		// Interpolation-free strings flush at most one literal part, which is
		// already a single string — no rejoin needed.
		switch len(parts) {
		case 0:
			return token.Token{Kind: token.StringLit, Value: "", Pos: start, End: l.pos()}
		case 1:
			return token.Token{Kind: token.StringLit, Value: parts[0].Literal, Pos: start, End: l.pos()}
		}
		var b strings.Builder
		for _, p := range parts {
			b.WriteString(p.Literal)
		}
		return token.Token{Kind: token.StringLit, Value: b.String(), Pos: start, End: l.pos()}
	}
	return token.Token{Kind: token.TemplateString, Parts: parts, Pos: start, End: l.pos()}
}

// scanInterpolated scans string content up to the terminator, handling
// escapes and $var / ${expr} / {$expr} interpolation. Returns the parts and
// whether the terminator was found.
func (l *Lexer) scanInterpolated(term byte) ([]token.TemplatePart, bool) {
	var parts []token.TemplatePart
	var lit strings.Builder
	// pending holds the current literal run as a slice of the source; the
	// builder is only engaged once a second run or an escape forces a join,
	// so escape-free literals never copy their bytes.
	pending := ""
	write := func(s string) {
		if s == "" {
			return
		}
		if lit.Len() == 0 && pending == "" {
			pending = s
			return
		}
		if pending != "" {
			lit.WriteString(pending)
			pending = ""
		}
		lit.WriteString(s)
	}
	// add presizes on first append: interpolated strings typically hold a few
	// alternating literal/var parts, so one allocation covers the common case.
	add := func(tp token.TemplatePart) {
		if parts == nil {
			parts = make([]token.TemplatePart, 0, 4)
		}
		parts = append(parts, tp)
	}
	flush := func() {
		if pending != "" {
			add(token.TemplatePart{Literal: pending})
			pending = ""
		} else if lit.Len() > 0 {
			add(token.TemplatePart{Literal: lit.String()})
			lit.Reset()
		}
	}
	for !l.eof() {
		c := l.src[l.off]
		switch {
		case c == term:
			l.advance(1)
			flush()
			return parts, true
		case c == '\\':
			write(decodeEscape(l.peek(1)))
			l.advance(2)
		case c == '$' && isIdentStart(l.peek(1)):
			flush()
			l.advance(1)
			p := token.TemplatePart{IsVar: true, Var: l.scanIdentText()}
			// Simple $arr[key] / $obj->prop forms.
			if !l.eof() && l.src[l.off] == '[' {
				l.advance(1)
				s := l.off
				for !l.eof() && l.src[l.off] != ']' {
					l.advance(1)
				}
				p.Index = strings.Trim(l.src[s:l.off], "'\"$")
				if !l.eof() {
					l.advance(1)
				}
			} else if !l.eof() && l.src[l.off] == '-' && l.peek(1) == '>' && isIdentStart(l.peek(2)) {
				l.advance(2)
				p.Prop = l.scanIdentText()
			}
			add(p)
		case c == '{' && l.peek(1) == '$':
			flush()
			l.advance(1)
			expr := l.scanBracedExpr()
			add(token.TemplatePart{IsVar: true, Expr: expr, Var: leadingVarName(expr)})
		case c == '$' && l.peek(1) == '{':
			flush()
			l.advance(2)
			s := l.off
			depth := 1
			for !l.eof() && depth > 0 {
				switch l.src[l.off] {
				case '{':
					depth++
				case '}':
					depth--
				}
				if depth > 0 {
					l.advance(1)
				}
			}
			expr := l.src[s:l.off]
			if !l.eof() {
				l.advance(1)
			}
			add(token.TemplatePart{IsVar: true, Expr: "$" + expr, Var: leadingBareName(expr)})
		default:
			// Consume a run of plain bytes in one go; the run is written as a
			// single source slice.
			s := l.off
			for !l.eof() {
				c := l.src[l.off]
				if c == term || c == '\\' ||
					(c == '$' && (isIdentStart(l.peek(1)) || l.peek(1) == '{')) ||
					(c == '{' && l.peek(1) == '$') {
					break
				}
				l.advance(1)
			}
			write(l.src[s:l.off])
		}
	}
	flush()
	return parts, false
}

// scanBracedExpr consumes a {$...} interpolation body; the opening '{' has
// been consumed. Returns the inner source without the braces.
func (l *Lexer) scanBracedExpr() string {
	s := l.off
	depth := 1
	for !l.eof() && depth > 0 {
		switch l.src[l.off] {
		case '{':
			depth++
		case '}':
			depth--
		}
		if depth > 0 {
			l.advance(1)
		}
	}
	expr := l.src[s:l.off]
	if !l.eof() {
		l.advance(1) // consume closing }
	}
	return expr
}

// leadingVarName extracts the variable name from an interpolation expression
// such as "$row['id']" or "$obj->name".
func leadingVarName(expr string) string {
	expr = strings.TrimSpace(expr)
	if !strings.HasPrefix(expr, "$") {
		return ""
	}
	return leadingBareName(expr[1:])
}

func leadingBareName(s string) string {
	i := 0
	for i < len(s) && isIdentPart(s[i]) {
		i++
	}
	return s[:i]
}

func decodeEscape(c byte) string {
	switch c {
	case 'n':
		return "\n"
	case 't':
		return "\t"
	case 'r':
		return "\r"
	case 'v':
		return "\v"
	case 'f':
		return "\f"
	case 'e':
		return "\x1b"
	case '0':
		return "\x00"
	case '\\':
		return "\\"
	case '$':
		return "$"
	case '"':
		return "\""
	case '`':
		return "`"
	case 0:
		return ""
	default:
		return "\\" + string(c)
	}
}

// scanHeredoc scans <<<LABEL ... LABEL; and <<<'LABEL' nowdocs.
func (l *Lexer) scanHeredoc(start token.Position) token.Token {
	l.advance(3)
	nowdoc := false
	if !l.eof() && l.src[l.off] == '\'' {
		nowdoc = true
		l.advance(1)
	} else if !l.eof() && l.src[l.off] == '"' {
		l.advance(1)
	}
	label := l.scanIdentText()
	if !l.eof() && (l.src[l.off] == '\'' || l.src[l.off] == '"') {
		l.advance(1)
	}
	// Skip to end of line.
	for !l.eof() && l.src[l.off] != '\n' {
		l.advance(1)
	}
	if !l.eof() {
		l.advance(1)
	}
	// Find the terminating label at start of a line (allowing indentation).
	bodyStart := l.off
	for !l.eof() {
		lineStart := l.off
		// Measure indentation.
		for !l.eof() && (l.src[l.off] == ' ' || l.src[l.off] == '\t') {
			l.advance(1)
		}
		if l.prefixAt(l.off, label) {
			after := l.off + len(label)
			if after >= len(l.src) || !isIdentPart(l.src[after]) {
				body := l.src[bodyStart:lineStart]
				l.advance(len(label))
				if nowdoc {
					return token.Token{Kind: token.StringLit, Value: body, Pos: start, End: l.pos()}
				}
				// Re-scan body for interpolation using a pooled sub-lexer.
				// scanInterpolated(0) terminates at end of input, so the body
				// needs no sentinel byte appended.
				sub := newPooled(l.file, body)
				sub.line, sub.inPHP = start.Line, true
				parts, _ := sub.scanInterpolated(0)
				sub.release()
				return l.templateToken(start, parts)
			}
		}
		// Advance to next line.
		l.off = lineStart
		for !l.eof() && l.src[l.off] != '\n' {
			l.advance(1)
		}
		if !l.eof() {
			l.advance(1)
		}
	}
	l.errorf(start, "unterminated heredoc %q", label)
	return token.Token{Kind: token.StringLit, Value: l.src[bodyStart:l.off], Pos: start, End: l.pos()}
}

// scanOperator scans operators, punctuation and casts.
func (l *Lexer) scanOperator(start token.Position) token.Token {
	mk := func(k token.Kind, n int) token.Token {
		v := l.src[l.off : l.off+n]
		l.advance(n)
		return token.Token{Kind: k, Value: v, Pos: start, End: l.pos()}
	}
	c := l.src[l.off]
	switch c {
	case '(':
		// Casts: "(" ws* typename ws* ")".
		if k, n := l.tryCast(); k != token.Invalid {
			t := mk(k, n)
			return t
		}
		return mk(token.LParen, 1)
	case ')':
		return mk(token.RParen, 1)
	case '{':
		return mk(token.LBrace, 1)
	case '}':
		return mk(token.RBrace, 1)
	case '[':
		return mk(token.LBracket, 1)
	case ']':
		return mk(token.RBracket, 1)
	case ';':
		return mk(token.Semicolon, 1)
	case ',':
		return mk(token.Comma, 1)
	case '@':
		return mk(token.At, 1)
	case '\\':
		return mk(token.Backslash, 1)
	case '+':
		switch l.peek(1) {
		case '+':
			return mk(token.Inc, 2)
		case '=':
			return mk(token.PlusEq, 2)
		}
		return mk(token.Plus, 1)
	case '-':
		switch l.peek(1) {
		case '-':
			return mk(token.Dec, 2)
		case '=':
			return mk(token.MinusEq, 2)
		case '>':
			return mk(token.Arrow, 2)
		}
		return mk(token.Minus, 1)
	case '*':
		if l.peek(1) == '*' {
			return mk(token.Pow, 2)
		}
		if l.peek(1) == '=' {
			return mk(token.StarEq, 2)
		}
		return mk(token.Star, 1)
	case '/':
		if l.peek(1) == '=' {
			return mk(token.SlashEq, 2)
		}
		return mk(token.Slash, 1)
	case '%':
		if l.peek(1) == '=' {
			return mk(token.PercentEq, 2)
		}
		return mk(token.Percent, 1)
	case '.':
		if l.peek(1) == '=' {
			return mk(token.DotEq, 2)
		}
		if l.peek(1) == '.' && l.peek(2) == '.' {
			return mk(token.Ellipsis, 3)
		}
		return mk(token.Dot, 1)
	case '=':
		if l.peek(1) == '=' {
			if l.peek(2) == '=' {
				return mk(token.Identical, 3)
			}
			return mk(token.Eq, 2)
		}
		if l.peek(1) == '>' {
			return mk(token.DoubleArrow, 2)
		}
		return mk(token.Assign, 1)
	case '!':
		if l.peek(1) == '=' {
			if l.peek(2) == '=' {
				return mk(token.NotIdentical, 3)
			}
			return mk(token.NotEq, 2)
		}
		return mk(token.Not, 1)
	case '<':
		switch l.peek(1) {
		case '=':
			if l.peek(2) == '>' {
				return mk(token.Spaceship, 3)
			}
			return mk(token.LtEq, 2)
		case '<':
			if l.peek(2) == '=' {
				return mk(token.ShlEq, 3)
			}
			return mk(token.Shl, 2)
		case '>':
			return mk(token.NotEq, 2)
		}
		return mk(token.Lt, 1)
	case '>':
		switch l.peek(1) {
		case '=':
			return mk(token.GtEq, 2)
		case '>':
			if l.peek(2) == '=' {
				return mk(token.ShrEq, 3)
			}
			return mk(token.Shr, 2)
		}
		return mk(token.Gt, 1)
	case '&':
		if l.peek(1) == '&' {
			return mk(token.AndAnd, 2)
		}
		if l.peek(1) == '=' {
			return mk(token.AmpEq, 2)
		}
		return mk(token.Amp, 1)
	case '|':
		if l.peek(1) == '|' {
			return mk(token.OrOr, 2)
		}
		if l.peek(1) == '=' {
			return mk(token.PipeEq, 2)
		}
		return mk(token.Pipe, 1)
	case '^':
		if l.peek(1) == '=' {
			return mk(token.CaretEq, 2)
		}
		return mk(token.Caret, 1)
	case '~':
		return mk(token.Tilde, 1)
	case '?':
		if l.peek(1) == '?' {
			if l.peek(2) == '=' {
				return mk(token.CoalesceEq, 3)
			}
			return mk(token.Coalesce, 2)
		}
		if l.peek(1) == '-' && l.peek(2) == '>' {
			return mk(token.NullArrow, 3)
		}
		return mk(token.Question, 1)
	case ':':
		if l.peek(1) == ':' {
			return mk(token.DoubleColon, 2)
		}
		return mk(token.Colon, 1)
	}
	l.errorf(start, "unexpected character %q", string(c))
	l.advance(1)
	return token.Token{Kind: token.Invalid, Value: string(c), Pos: start, End: l.pos()}
}

// tryCast recognizes "(typename)" cast pseudo-tokens at the current offset.
// Returns the cast kind and byte length, or (Invalid, 0).
func (l *Lexer) tryCast() (token.Kind, int) {
	i := l.off + 1
	for i < len(l.src) && (l.src[i] == ' ' || l.src[i] == '\t') {
		i++
	}
	s := i
	for i < len(l.src) && isIdentPart(l.src[i]) {
		i++
	}
	name := l.src[s:i]
	for i < len(l.src) && (l.src[i] == ' ' || l.src[i] == '\t') {
		i++
	}
	if i >= len(l.src) || l.src[i] != ')' {
		return token.Invalid, 0
	}
	n := i - l.off + 1
	// Case-insensitive match without lowering: EqualFold on ASCII names does
	// not allocate, and this path runs on every '(' sighting.
	switch {
	case strings.EqualFold(name, "int"), strings.EqualFold(name, "integer"):
		return token.CastIntKw, n
	case strings.EqualFold(name, "float"), strings.EqualFold(name, "double"), strings.EqualFold(name, "real"):
		return token.CastFloatKw, n
	case strings.EqualFold(name, "string"), strings.EqualFold(name, "binary"):
		return token.CastStringKw, n
	case strings.EqualFold(name, "bool"), strings.EqualFold(name, "boolean"):
		return token.CastBoolKw, n
	case strings.EqualFold(name, "array"):
		return token.CastArrayKw, n
	case strings.EqualFold(name, "object"):
		return token.CastObjectKw, n
	}
	return token.Invalid, 0
}
