package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/php/token"
)

func kinds(toks []token.Token) []token.Kind {
	out := make([]token.Kind, 0, len(toks))
	for _, t := range toks {
		out = append(out, t.Kind)
	}
	return out
}

func lexAll(t *testing.T, src string) []token.Token {
	t.Helper()
	toks, errs := Tokens("test.php", src)
	if len(errs) > 0 {
		t.Fatalf("unexpected lex errors: %v", errs)
	}
	return toks
}

func TestInlineHTMLOnly(t *testing.T) {
	toks := lexAll(t, "<html><body>hello</body></html>")
	if len(toks) != 2 {
		t.Fatalf("got %d tokens, want 2", len(toks))
	}
	if toks[0].Kind != token.InlineHTML || toks[0].Value != "<html><body>hello</body></html>" {
		t.Errorf("html token = %+v", toks[0])
	}
	if toks[1].Kind != token.EOF {
		t.Errorf("last token = %v, want EOF", toks[1].Kind)
	}
}

func TestOpenCloseTags(t *testing.T) {
	toks := lexAll(t, "before<?php echo $x; ?>after")
	want := []token.Kind{
		token.InlineHTML, token.KwEcho, token.Variable, token.Semicolon,
		token.Semicolon, // ?> emits a synthetic semicolon
		token.InlineHTML, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEchoTag(t *testing.T) {
	toks := lexAll(t, "<?= $name ?>")
	got := kinds(toks)
	want := []token.Kind{token.KwEcho, token.Variable, token.Semicolon, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestVariableToken(t *testing.T) {
	toks := lexAll(t, "<?php $foo_bar1 = 1;")
	if toks[0].Kind != token.Variable || toks[0].Value != "foo_bar1" {
		t.Errorf("variable token = %+v", toks[0])
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks := lexAll(t, "<?php IF Else WHILE foreach FUNCTION")
	want := []token.Kind{token.KwIf, token.KwElse, token.KwWhile, token.KwForeach, token.KwFunction, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	tests := []struct {
		src  string
		kind token.Kind
		val  string
	}{
		{"123", token.IntLit, "123"},
		{"0x1F", token.IntLit, "0x1F"},
		{"0b101", token.IntLit, "0b101"},
		{"1.5", token.FloatLit, "1.5"},
		{"1e3", token.FloatLit, "1e3"},
		{"2.5e-2", token.FloatLit, "2.5e-2"},
		{"1_000", token.IntLit, "1_000"},
	}
	for _, tt := range tests {
		toks := lexAll(t, "<?php "+tt.src+";")
		if toks[0].Kind != tt.kind || toks[0].Value != tt.val {
			t.Errorf("%q: got (%v,%q), want (%v,%q)", tt.src, toks[0].Kind, toks[0].Value, tt.kind, tt.val)
		}
	}
}

func TestSingleQuotedString(t *testing.T) {
	toks := lexAll(t, `<?php 'it\'s a \\ test $notvar';`)
	if toks[0].Kind != token.StringLit {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
	if want := `it's a \ test $notvar`; toks[0].Value != want {
		t.Errorf("value = %q, want %q", toks[0].Value, want)
	}
}

func TestDoubleQuotedNoInterp(t *testing.T) {
	toks := lexAll(t, `<?php "hello\nworld";`)
	if toks[0].Kind != token.StringLit {
		t.Fatalf("kind = %v, want StringLit", toks[0].Kind)
	}
	if toks[0].Value != "hello\nworld" {
		t.Errorf("value = %q", toks[0].Value)
	}
}

func TestDoubleQuotedInterpolation(t *testing.T) {
	toks := lexAll(t, `<?php "id = $id and name = $name!";`)
	tok := toks[0]
	if tok.Kind != token.TemplateString {
		t.Fatalf("kind = %v, want TemplateString", tok.Kind)
	}
	if len(tok.Parts) != 5 {
		t.Fatalf("parts = %d, want 5: %+v", len(tok.Parts), tok.Parts)
	}
	if tok.Parts[0].Literal != "id = " || tok.Parts[0].IsVar {
		t.Errorf("part 0 = %+v", tok.Parts[0])
	}
	if tok.Parts[1].Var != "id" || !tok.Parts[1].IsVar {
		t.Errorf("part 1 = %+v", tok.Parts[1])
	}
	if tok.Parts[3].Var != "name" {
		t.Errorf("part 3 = %+v", tok.Parts[3])
	}
}

func TestInterpolationArrayAndProp(t *testing.T) {
	toks := lexAll(t, `<?php "v=$row[id] p=$obj->name";`)
	tok := toks[0]
	if tok.Kind != token.TemplateString {
		t.Fatalf("kind = %v", tok.Kind)
	}
	var vars []token.TemplatePart
	for _, p := range tok.Parts {
		if p.IsVar {
			vars = append(vars, p)
		}
	}
	if len(vars) != 2 {
		t.Fatalf("var parts = %d, want 2", len(vars))
	}
	if vars[0].Var != "row" || vars[0].Index != "id" {
		t.Errorf("part = %+v", vars[0])
	}
	if vars[1].Var != "obj" || vars[1].Prop != "name" {
		t.Errorf("part = %+v", vars[1])
	}
}

func TestBracedInterpolation(t *testing.T) {
	toks := lexAll(t, `<?php "x={$row['id']}";`)
	tok := toks[0]
	if tok.Kind != token.TemplateString {
		t.Fatalf("kind = %v", tok.Kind)
	}
	found := false
	for _, p := range tok.Parts {
		if p.IsVar && p.Var == "row" {
			found = true
		}
	}
	if !found {
		t.Errorf("no braced var part found: %+v", tok.Parts)
	}
}

func TestHeredoc(t *testing.T) {
	src := "<?php $q = <<<SQL\nSELECT * FROM t WHERE id=$id\nSQL;\n"
	toks := lexAll(t, src)
	// $q = <heredoc> ;
	if toks[2].Kind != token.TemplateString {
		t.Fatalf("kind = %v, want TemplateString; toks=%v", toks[2].Kind, kinds(toks))
	}
}

func TestNowdoc(t *testing.T) {
	src := "<?php $q = <<<'TXT'\nno $interp here\nTXT;\n"
	toks := lexAll(t, src)
	if toks[2].Kind != token.StringLit {
		t.Fatalf("kind = %v, want StringLit", toks[2].Kind)
	}
	if !strings.Contains(toks[2].Value, "$interp") {
		t.Errorf("nowdoc should not interpolate: %q", toks[2].Value)
	}
}

func TestComments(t *testing.T) {
	src := `<?php
// line comment $a
# hash comment
/* block
   comment */
$x = 1;`
	toks := lexAll(t, src)
	if toks[0].Kind != token.Variable || toks[0].Value != "x" {
		t.Errorf("first token after comments = %+v", toks[0])
	}
}

func TestCasts(t *testing.T) {
	toks := lexAll(t, "<?php (int)$x; (string) $y; ( float )$z;")
	if toks[0].Kind != token.CastIntKw {
		t.Errorf("token 0 = %v", toks[0].Kind)
	}
	if toks[3].Kind != token.CastStringKw {
		t.Errorf("token 3 = %v", toks[3].Kind)
	}
	if toks[6].Kind != token.CastFloatKw {
		t.Errorf("token 6 = %v", toks[6].Kind)
	}
}

func TestParenNotCast(t *testing.T) {
	toks := lexAll(t, "<?php ($x + 1);")
	if toks[0].Kind != token.LParen {
		t.Errorf("token 0 = %v, want LParen", toks[0].Kind)
	}
}

func TestOperators(t *testing.T) {
	src := "<?php === !== <=> ?? ??= -> ?-> :: => ... << >> **"
	want := []token.Kind{
		token.Identical, token.NotIdentical, token.Spaceship, token.Coalesce,
		token.CoalesceEq, token.Arrow, token.NullArrow, token.DoubleColon,
		token.DoubleArrow, token.Ellipsis, token.Shl, token.Shr, token.Pow, token.EOF,
	}
	got := kinds(lexAll(t, src))
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks := lexAll(t, "<?php\n$x = 1;\n$y = 2;")
	// $x on line 2, $y on line 3.
	if toks[0].Pos.Line != 2 {
		t.Errorf("$x line = %d, want 2", toks[0].Pos.Line)
	}
	if toks[4].Pos.Line != 3 {
		t.Errorf("$y line = %d, want 3 (token %v)", toks[4].Pos.Line, toks[4])
	}
}

func TestBacktickShell(t *testing.T) {
	toks := lexAll(t, "<?php `ls $dir`;")
	if toks[0].Kind != token.TemplateString || toks[0].Value != "`shell`" {
		t.Errorf("backtick token = %+v", toks[0])
	}
}

func TestVariableVariable(t *testing.T) {
	toks := lexAll(t, "<?php $$name;")
	if toks[0].Kind != token.Dollar || toks[1].Kind != token.Variable {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := Tokens("t.php", `<?php $x = "abc`)
	if len(errs) == 0 {
		t.Error("want error for unterminated string")
	}
}

func TestAttributeSkipped(t *testing.T) {
	toks := lexAll(t, "<?php #[Attr(1,[2])] $x = 1;")
	if toks[0].Kind != token.Variable || toks[0].Value != "x" {
		t.Errorf("token after attribute = %+v", toks[0])
	}
}

// Property: the lexer always terminates and ends with exactly one EOF token,
// regardless of input bytes.
func TestLexerTotalQuick(t *testing.T) {
	f := func(s string) bool {
		toks, _ := Tokens("q.php", "<?php "+s)
		if len(toks) == 0 {
			return false
		}
		eofCount := 0
		for _, tk := range toks {
			if tk.Kind == token.EOF {
				eofCount++
			}
		}
		return eofCount == 1 && toks[len(toks)-1].Kind == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: token positions are monotonically non-decreasing.
func TestLexerPositionsMonotonicQuick(t *testing.T) {
	f := func(s string) bool {
		toks, _ := Tokens("q.php", "<?php "+s)
		last := 0
		for _, tk := range toks {
			if tk.Pos.Offset < last {
				return false
			}
			last = tk.Pos.Offset
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
