package lexer

import (
	"strings"
	"testing"

	"repro/internal/php/token"
)

// TestPooledLexerDoesNotLeakAcrossFiles pins the pooling contract: a recycled
// lexer starts every file with zero state, so tokens, errors, and pending
// queues from one file can never surface in the next.
func TestPooledLexerDoesNotLeakAcrossFiles(t *testing.T) {
	// First file exercises every piece of lexer state that could leak: a
	// pending echo token from <?=, a lexical error, and in-flight source.
	_, errs1 := Tokens("a.php", "<?= $leakvar . 'unterminated")
	if len(errs1) == 0 {
		t.Fatal("first file should report an unterminated string error")
	}
	// Second file must see only its own tokens and no inherited errors.
	toks2, errs2 := Tokens("b.php", "<?php $y;")
	if len(errs2) != 0 {
		t.Errorf("second file inherited errors: %v", errs2)
	}
	for _, tok := range toks2 {
		if tok.Pos.File != "b.php" && tok.Pos.File != "" {
			t.Errorf("token %v carries a position from a previous file", tok)
		}
		if tok.Value == "leakvar" || strings.Contains(tok.Value, "unterminated") {
			t.Errorf("token %v leaked from a previous file", tok)
		}
	}
	want := []token.Kind{token.Variable, token.Semicolon, token.EOF}
	if len(toks2) != len(want) {
		t.Fatalf("second file lexed %d tokens, want %d: %v", len(toks2), len(want), toks2)
	}
	for i, k := range want {
		if toks2[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks2[i].Kind, k)
		}
	}
}

// TestReleaseScrubsAllState white-boxes release: every field must be zeroed
// before the lexer re-enters the pool.
func TestReleaseScrubsAllState(t *testing.T) {
	l := newPooled("a.php", "<?= 'x' . $v;")
	for {
		if l.Next().Kind == token.EOF {
			break
		}
	}
	l.release()
	if l.src != "" || l.file != "" || l.off != 0 || l.line != 0 || l.col != 0 ||
		l.inPHP || l.errs != nil || l.pending != nil {
		t.Errorf("release left state behind: %+v", *l)
	}
}

// TestTokensAppendReusesBuffer proves the buffer-ownership contract: the
// caller's slice is extended in place when capacity allows.
func TestTokensAppendReusesBuffer(t *testing.T) {
	buf := make([]token.Token, 0, 64)
	toks, errs := TokensAppend("a.php", "<?php $x = 1;", buf)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if cap(toks) != 64 {
		t.Errorf("buffer reallocated: cap = %d, want 64", cap(toks))
	}
	if toks[len(toks)-1].Kind != token.EOF {
		t.Errorf("last token = %v, want EOF", toks[len(toks)-1].Kind)
	}
	// Appending a second file into the recycled (truncated) buffer must not
	// resurrect the first file's tokens.
	toks2, _ := TokensAppend("b.php", "<?php $y;", toks[:0])
	for _, tok := range toks2 {
		if tok.Value == "x" || tok.Value == "1" {
			t.Errorf("token %v resurrected from previous lex", tok)
		}
	}
}

// TestSingleQuotedFastPathSharesSource checks the escape-free literal fast
// path still produces exact values, including when escapes force the slow
// path mid-string.
func TestSingleQuotedFastPaths(t *testing.T) {
	cases := map[string]string{
		`<?php 'plain';`:         "plain",
		`<?php '';`:              "",
		`<?php 'a\'b';`:          "a'b",
		`<?php 'pre\\post';`:     `pre\post`,
		`<?php 'keep\nliteral';`: `keep\nliteral`,
	}
	for src, want := range cases {
		toks, errs := Tokens("t.php", src)
		if len(errs) != 0 {
			t.Errorf("%s: errors %v", src, errs)
			continue
		}
		if toks[0].Kind != token.StringLit || toks[0].Value != want {
			t.Errorf("%s: got (%v, %q), want (StringLit, %q)", src, toks[0].Kind, toks[0].Value, want)
		}
	}
}
