package ml

import (
	"fmt"
	"math/rand"
)

// ConfusionMatrix follows the paper's Table III convention: the positive
// class is "Yes (FP)" — predicting that a candidate vulnerability is a false
// positive.
//
//	TP: predicted FP, observed FP
//	FP: predicted FP, observed real vulnerability (a missed vulnerability!)
//	FN: predicted not-FP, observed FP
//	TN: predicted not-FP, observed real vulnerability
type ConfusionMatrix struct {
	TP, FP, FN, TN int
}

// Add records one prediction.
func (c *ConfusionMatrix) Add(predicted, observed bool) {
	switch {
	case predicted && observed:
		c.TP++
	case predicted && !observed:
		c.FP++
	case !predicted && observed:
		c.FN++
	default:
		c.TN++
	}
}

// N returns the total number of observations.
func (c *ConfusionMatrix) N() int { return c.TP + c.FP + c.FN + c.TN }

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Metrics are the nine evaluation measures of Table II.
type Metrics struct {
	// TPP (recall): tp / (tp + fn) — rate of false positives predicted
	// correctly (goal 1).
	TPP float64
	// PFP (fallout): fp / (tn + fp) — rate of real vulnerabilities wrongly
	// classified as false positives (goal 2; these are missed
	// vulnerabilities).
	PFP float64
	// PRFP (positive precision): tp / (tp + fp).
	PRFP float64
	// PD (specificity): tn / (tn + fp).
	PD float64
	// PPD (inverse precision): tn / (tn + fn).
	PPD float64
	// ACC (accuracy): (tp + tn) / N.
	ACC float64
	// PR (precision): (prfp + ppd) / 2.
	PR float64
	// Inform (informedness): tpp + pd - 1 = tpp - pfp.
	Inform float64
	// Jacc (Jaccard): tp / (tp + fn + fp).
	Jacc float64
}

// Compute derives the Table II metrics from the confusion matrix.
func (c *ConfusionMatrix) Compute() Metrics {
	m := Metrics{
		TPP:  ratio(c.TP, c.TP+c.FN),
		PFP:  ratio(c.FP, c.TN+c.FP),
		PRFP: ratio(c.TP, c.TP+c.FP),
		PD:   ratio(c.TN, c.TN+c.FP),
		PPD:  ratio(c.TN, c.TN+c.FN),
		ACC:  ratio(c.TP+c.TN, c.N()),
		Jacc: ratio(c.TP, c.TP+c.FN+c.FP),
	}
	m.PR = (m.PRFP + m.PPD) / 2
	m.Inform = m.TPP + m.PD - 1
	return m
}

// String renders the matrix in Table III layout.
func (c *ConfusionMatrix) String() string {
	return fmt.Sprintf("[yes: tp=%d fp=%d | no: fn=%d tn=%d]", c.TP, c.FP, c.FN, c.TN)
}

// errNotProber reports a classifier without probability output where one is
// required.
var errNotProber = fmt.Errorf("ml: classifier does not produce probabilities")

// stratifiedFolds deals instance indices into k folds, preserving the class
// ratio in each fold. Deterministic under seed.
func stratifiedFolds(d *Dataset, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: k-fold requires k >= 2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d instances cannot fill %d folds", d.Len(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, in := range d.Instances {
		if in.Label {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	folds := make([][]int, k)
	deal := func(idx []int) {
		for i, v := range idx {
			folds[i%k] = append(folds[i%k], v)
		}
	}
	deal(pos)
	deal(neg)
	return folds, nil
}

// CrossValidate runs stratified k-fold cross-validation of the classifier
// built by factory, returning the aggregated confusion matrix. The factory
// is invoked once per fold so no state leaks between folds. Deterministic
// under seed.
func CrossValidate(factory func() Classifier, d *Dataset, k int, seed int64) (ConfusionMatrix, error) {
	var cm ConfusionMatrix
	folds, err := stratifiedFolds(d, k, seed)
	if err != nil {
		return cm, err
	}
	for fi := 0; fi < k; fi++ {
		inTest := make(map[int]bool, len(folds[fi]))
		for _, i := range folds[fi] {
			inTest[i] = true
		}
		train := &Dataset{AttrNames: d.AttrNames}
		for i, in := range d.Instances {
			if !inTest[i] {
				train.Instances = append(train.Instances, in)
			}
		}
		c := factory()
		if err := c.Train(train); err != nil {
			return cm, fmt.Errorf("ml: fold %d: %w", fi, err)
		}
		for _, i := range folds[fi] {
			cm.Add(c.Predict(d.Instances[i].Features), d.Instances[i].Label)
		}
	}
	return cm, nil
}

// Evaluate trains on train and evaluates on test, returning the matrix.
func Evaluate(c Classifier, train, test *Dataset) (ConfusionMatrix, error) {
	var cm ConfusionMatrix
	if err := c.Train(train); err != nil {
		return cm, err
	}
	for _, in := range test.Instances {
		cm.Add(c.Predict(in.Features), in.Label)
	}
	return cm, nil
}
