package ml

import (
	"math"
	"testing"
	"testing/quick"
)

// perfectProber scores positives 0.9 and negatives 0.1.
type labelledProber struct{ d *Dataset }

func (p *labelledProber) Prob(features []float64) float64 {
	for _, in := range p.d.Instances {
		same := true
		for j := range in.Features {
			if j >= len(features) || in.Features[j] != features[j] {
				same = false
				break
			}
		}
		if same {
			if in.Label {
				return 0.9
			}
			return 0.1
		}
	}
	return 0.5
}

func TestAUCPerfectClassifier(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		NewInstance([]bool{true, false}, true),
		NewInstance([]bool{false, true}, false),
		NewInstance([]bool{true, true}, true),
		NewInstance([]bool{false, false}, false),
	}}
	auc := AUC(&labelledProber{d: d}, d)
	if math.Abs(auc-1.0) > 1e-9 {
		t.Errorf("perfect AUC = %v, want 1", auc)
	}
}

// constProber returns the same probability for everything: AUC must be 0.5.
type constProber struct{}

func (constProber) Prob([]float64) float64 { return 0.7 }

func TestAUCUninformativeClassifier(t *testing.T) {
	d := synthDataset(100, 31)
	auc := AUC(constProber{}, d)
	if math.Abs(auc-0.5) > 1e-9 {
		t.Errorf("constant-prob AUC = %v, want 0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	d := synthDataset(200, 32)
	lr := &LogisticRegression{}
	if err := lr.Train(d); err != nil {
		t.Fatal(err)
	}
	curve := ROC(lr, d)
	if curve[0].FPR != 0 || curve[0].TPR != 0 {
		t.Errorf("curve start = %+v", curve[0])
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		t.Errorf("curve end = %+v", last)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestAUCTrainedBeatsChance(t *testing.T) {
	d := synthDataset(300, 33)
	for _, p := range []Prober{&LogisticRegression{}, &SVM{Seed: 1}, &RandomForest{Seed: 1, Trees: 25}, &NaiveBayes{}} {
		c := p.(Classifier)
		if err := c.Train(d); err != nil {
			t.Fatal(err)
		}
		auc := AUC(p, d)
		if auc < 0.9 {
			t.Errorf("%s AUC = %.3f, want >= 0.9", c.Name(), auc)
		}
	}
}

func TestAUCSingleClass(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		NewInstance([]bool{true}, true),
		NewInstance([]bool{false}, true),
	}}
	auc := AUC(constProber{}, d)
	if math.Abs(auc-0.5) > 1e-9 {
		t.Errorf("degenerate AUC = %v", auc)
	}
}

func TestCrossValidatedAUC(t *testing.T) {
	d := synthDataset(200, 34)
	auc, err := CrossValidatedAUC(func() Classifier { return &LogisticRegression{} }, d, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.9 || auc > 1 {
		t.Errorf("cv AUC = %.3f", auc)
	}
	// Errors propagate.
	if _, err := CrossValidatedAUC(func() Classifier { return &LogisticRegression{} }, d, 1, 1); err == nil {
		t.Error("want k-fold error")
	}
}

// nonProber is a Classifier without probabilities.
type nonProber struct{}

func (nonProber) Name() string           { return "np" }
func (nonProber) Train(*Dataset) error   { return nil }
func (nonProber) Predict([]float64) bool { return false }

func TestCrossValidatedAUCNeedsProber(t *testing.T) {
	d := synthDataset(50, 35)
	if _, err := CrossValidatedAUC(func() Classifier { return nonProber{} }, d, 5, 1); err == nil {
		t.Error("want errNotProber")
	}
}

// Property: AUC is always within [0, 1] for arbitrary probability
// assignments.
func TestAUCBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		d := synthDataset(60, seed)
		lr := &LogisticRegression{Epochs: 5}
		if err := lr.Train(d); err != nil {
			return false
		}
		auc := AUC(lr, d)
		return auc >= 0 && auc <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
