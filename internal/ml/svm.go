package ml

import (
	"math"
	"math/rand"
)

// SVM is a linear support vector machine trained with the Pegasos
// stochastic sub-gradient algorithm (hinge loss, L2 regularization) — the
// "SVM" entry of the paper's top-3 ensemble. Binary attribute vectors are
// linearly separable enough that a linear kernel matches WEKA's SMO default
// behaviour on this data.
type SVM struct {
	// Lambda is the regularization parameter (default 1e-3).
	Lambda float64
	// Epochs is the number of passes over the data (default 200).
	Epochs int
	// Seed drives the sampling order for determinism.
	Seed int64

	weights []float64
	bias    float64
}

var _ Classifier = (*SVM)(nil)
var _ Prober = (*SVM)(nil)

// Name implements Classifier.
func (s *SVM) Name() string { return "SVM" }

// Train implements Classifier.
func (s *SVM) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if s.Lambda == 0 {
		s.Lambda = 1e-3
	}
	if s.Epochs == 0 {
		s.Epochs = 200
	}
	rng := rand.New(rand.NewSource(s.Seed + 1))
	n := d.NumFeatures()
	m := d.Len()
	s.weights = make([]float64, n)
	s.bias = 0

	t := 0
	for epoch := 0; epoch < s.Epochs; epoch++ {
		for i := 0; i < m; i++ {
			t++
			in := d.Instances[rng.Intn(m)]
			y := -1.0
			if in.Label {
				y = 1
			}
			eta := 1 / (s.Lambda * float64(t))
			margin := y * s.decision(in.Features)
			// Regularization shrink.
			for j := range s.weights {
				s.weights[j] *= 1 - eta*s.Lambda
			}
			if margin < 1 {
				for j, x := range in.Features {
					s.weights[j] += eta * y * x
				}
				s.bias += eta * y
			}
		}
	}
	return nil
}

func (s *SVM) decision(features []float64) float64 {
	z := s.bias
	for j, w := range s.weights {
		if j < len(features) {
			z += w * features[j]
		}
	}
	return z
}

// Predict implements Classifier.
func (s *SVM) Predict(features []float64) bool { return s.decision(features) >= 0 }

// Prob implements Prober via a logistic squashing of the margin (Platt-style
// with fixed scale; adequate for ensemble voting and ranking).
func (s *SVM) Prob(features []float64) float64 {
	return 1 / (1 + math.Exp(-2*s.decision(features)))
}
