// Package ml implements the machine-learning substrate of WAP's false
// positive predictor: the classifiers evaluated in the paper (Support Vector
// Machine, Logistic Regression, Random Tree and Random Forest), the metric
// suite of Table II, confusion matrices, and stratified cross-validation —
// the parts of WEKA the tool depends on, re-implemented in Go.
package ml

import (
	"fmt"
	"math/rand"
)

// Instance is one training/evaluation example: a binary attribute vector
// encoded as float64 features plus a boolean label. Label true means class
// "Yes (FP)" — the candidate vulnerability is a false positive.
type Instance struct {
	Features []float64
	Label    bool
}

// NewInstance builds an instance from a boolean attribute vector.
func NewInstance(attrs []bool, label bool) Instance {
	f := make([]float64, len(attrs))
	for i, a := range attrs {
		if a {
			f[i] = 1
		}
	}
	return Instance{Features: f, Label: label}
}

// Dataset is an ordered collection of instances sharing a feature layout.
type Dataset struct {
	Instances []Instance
	// AttrNames optionally names each feature column.
	AttrNames []string
}

// NumFeatures returns the feature dimensionality (0 when empty).
func (d *Dataset) NumFeatures() int {
	if len(d.Instances) == 0 {
		return 0
	}
	return len(d.Instances[0].Features)
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// CountLabels returns (positives, negatives).
func (d *Dataset) CountLabels() (pos, neg int) {
	for _, in := range d.Instances {
		if in.Label {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

// Clone deep-copies the dataset.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Instances: make([]Instance, len(d.Instances)),
		AttrNames: append([]string(nil), d.AttrNames...),
	}
	for i, in := range d.Instances {
		out.Instances[i] = Instance{
			Features: append([]float64(nil), in.Features...),
			Label:    in.Label,
		}
	}
	return out
}

// Shuffle permutes instances with the given RNG.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	rng.Shuffle(len(d.Instances), func(i, j int) {
		d.Instances[i], d.Instances[j] = d.Instances[j], d.Instances[i]
	})
}

// Classifier is a trainable binary classifier.
type Classifier interface {
	// Name returns the classifier's display name.
	Name() string
	// Train fits the model to the dataset.
	Train(d *Dataset) error
	// Predict returns the predicted label for the features.
	Predict(features []float64) bool
}

// Prober is implemented by classifiers that produce a probability for the
// positive class.
type Prober interface {
	// Prob returns P(label=true | features) in [0, 1].
	Prob(features []float64) float64
}

// validateTrain rejects degenerate training sets.
func validateTrain(d *Dataset) error {
	if d == nil || d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	n := d.NumFeatures()
	for i, in := range d.Instances {
		if len(in.Features) != n {
			return fmt.Errorf("ml: instance %d has %d features, want %d", i, len(in.Features), n)
		}
	}
	return nil
}
