package ml

import (
	"math"
	"math/rand"
)

// RandomForest is a bagged ensemble of random-subspace decision trees — the
// "Random Forest" classifier that replaces Random Tree in the paper's new
// top 3 (Section III-B1).
type RandomForest struct {
	// Trees is the ensemble size (default 60, mirroring WEKA-era defaults
	// scaled to the small data set).
	Trees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// Seed drives bootstrap sampling and feature sampling.
	Seed int64

	members []*DecisionTree
}

var _ Classifier = (*RandomForest)(nil)
var _ Prober = (*RandomForest)(nil)

// Name implements Classifier.
func (rf *RandomForest) Name() string { return "Random Forest" }

// Train implements Classifier.
func (rf *RandomForest) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if rf.Trees == 0 {
		rf.Trees = 60
	}
	if rf.MaxDepth == 0 {
		rf.MaxDepth = 12
	}
	rng := rand.New(rand.NewSource(rf.Seed + 11))
	k := int(math.Ceil(math.Sqrt(float64(d.NumFeatures()))))
	rf.members = make([]*DecisionTree, 0, rf.Trees)
	for i := 0; i < rf.Trees; i++ {
		t := &DecisionTree{
			MaxDepth:      rf.MaxDepth,
			FeatureSample: k,
			Seed:          rf.Seed + int64(i)*101,
		}
		if err := t.TrainBootstrap(d, rng); err != nil {
			return err
		}
		rf.members = append(rf.members, t)
	}
	return nil
}

// Prob implements Prober: the mean of member probabilities.
func (rf *RandomForest) Prob(features []float64) float64 {
	if len(rf.members) == 0 {
		return 0.5
	}
	sum := 0.0
	for _, t := range rf.members {
		sum += t.Prob(features)
	}
	return sum / float64(len(rf.members))
}

// Predict implements Classifier.
func (rf *RandomForest) Predict(features []float64) bool {
	return rf.Prob(features) >= 0.5
}

// Ensemble combines classifiers by majority vote — WAP "uses a combination
// of 3 classifiers" to decide whether a candidate is a false positive.
type Ensemble struct {
	Members []Classifier
}

var _ Classifier = (*Ensemble)(nil)

// NewTop3 returns the paper's new top-3 ensemble: SVM, Logistic Regression
// and Random Forest (Section III-B1), deterministic under seed.
func NewTop3(seed int64) *Ensemble {
	return &Ensemble{Members: []Classifier{
		&SVM{Seed: seed},
		&LogisticRegression{},
		&RandomForest{Seed: seed},
	}}
}

// NewOriginalTop3 returns WAP v2.1's ensemble: Logistic Regression, Random
// Tree and SVM (Section II).
func NewOriginalTop3(numFeatures int, seed int64) *Ensemble {
	return &Ensemble{Members: []Classifier{
		&LogisticRegression{},
		NewRandomTree(numFeatures, seed),
		&SVM{Seed: seed},
	}}
}

// Name implements Classifier.
func (e *Ensemble) Name() string { return "Top-3 Ensemble" }

// Train implements Classifier.
func (e *Ensemble) Train(d *Dataset) error {
	for _, m := range e.Members {
		if err := m.Train(d); err != nil {
			return err
		}
	}
	return nil
}

// Predict implements Classifier by majority vote.
func (e *Ensemble) Predict(features []float64) bool {
	votes := 0
	for _, m := range e.Members {
		if m.Predict(features) {
			votes++
		}
	}
	return votes*2 > len(e.Members)
}

// Votes returns the per-member predictions, for explanation output.
func (e *Ensemble) Votes(features []float64) []bool {
	out := make([]bool, len(e.Members))
	for i, m := range e.Members {
		out[i] = m.Predict(features)
	}
	return out
}
