package ml

import (
	"math"
	"math/rand"
)

// treeNode is a binary decision-tree node splitting on feature <= threshold.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode // feature <= threshold
	right     *treeNode
	leaf      bool
	prob      float64 // P(label=true) at a leaf
}

// DecisionTree is a CART-style tree with Gini impurity — the building block
// for Random Tree and Random Forest.
type DecisionTree struct {
	// MaxDepth bounds tree depth (default 12).
	MaxDepth int
	// MinLeaf is the minimum instances per leaf (default 1).
	MinLeaf int
	// FeatureSample is the number of random features considered per split;
	// 0 considers all (plain CART), sqrt(n) gives a Random Tree.
	FeatureSample int
	// Seed drives feature sampling.
	Seed int64

	root *treeNode
	rng  *rand.Rand
}

var _ Classifier = (*DecisionTree)(nil)
var _ Prober = (*DecisionTree)(nil)

// Name implements Classifier.
func (t *DecisionTree) Name() string {
	if t.FeatureSample > 0 {
		return "Random Tree"
	}
	return "Decision Tree"
}

// Train implements Classifier.
func (t *DecisionTree) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if t.MaxDepth == 0 {
		t.MaxDepth = 12
	}
	if t.MinLeaf == 0 {
		t.MinLeaf = 1
	}
	t.rng = rand.New(rand.NewSource(t.Seed + 7))
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(d, idx, 0)
	return nil
}

// TrainBootstrap fits the tree on a bootstrap sample drawn with rng — used
// by RandomForest bagging.
func (t *DecisionTree) TrainBootstrap(d *Dataset, rng *rand.Rand) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if t.MaxDepth == 0 {
		t.MaxDepth = 12
	}
	if t.MinLeaf == 0 {
		t.MinLeaf = 1
	}
	t.rng = rand.New(rand.NewSource(t.Seed + 7))
	n := d.Len()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	t.root = t.build(d, idx, 0)
	return nil
}

func labelCounts(d *Dataset, idx []int) (pos, neg int) {
	for _, i := range idx {
		if d.Instances[i].Label {
			pos++
		} else {
			neg++
		}
	}
	return pos, neg
}

func gini(pos, neg int) float64 {
	n := float64(pos + neg)
	if n == 0 {
		return 0
	}
	p := float64(pos) / n
	return 2 * p * (1 - p)
}

func (t *DecisionTree) build(d *Dataset, idx []int, depth int) *treeNode {
	pos, neg := labelCounts(d, idx)
	total := pos + neg
	leafProb := 0.5
	if total > 0 {
		leafProb = float64(pos) / float64(total)
	}
	if depth >= t.MaxDepth || total <= t.MinLeaf || pos == 0 || neg == 0 {
		return &treeNode{leaf: true, prob: leafProb}
	}

	nf := d.NumFeatures()
	features := t.candidateFeatures(nf)

	bestFeature, bestThresh := -1, 0.0
	bestImpurity := math.Inf(1)
	parentImpurity := gini(pos, neg)

	for _, f := range features {
		// Binary features: single threshold at 0.5. For generality gather
		// distinct values.
		thresholds := distinctThresholds(d, idx, f)
		for _, thr := range thresholds {
			lp, ln, rp, rn := 0, 0, 0, 0
			for _, i := range idx {
				if d.Instances[i].Features[f] <= thr {
					if d.Instances[i].Label {
						lp++
					} else {
						ln++
					}
				} else {
					if d.Instances[i].Label {
						rp++
					} else {
						rn++
					}
				}
			}
			if lp+ln == 0 || rp+rn == 0 {
				continue
			}
			w := float64(lp+ln)*gini(lp, ln) + float64(rp+rn)*gini(rp, rn)
			w /= float64(total)
			if w < bestImpurity {
				bestImpurity = w
				bestFeature = f
				bestThresh = thr
			}
		}
	}
	if bestFeature < 0 || bestImpurity >= parentImpurity-1e-12 {
		return &treeNode{leaf: true, prob: leafProb}
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if d.Instances[i].Features[bestFeature] <= bestThresh {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThresh,
		left:      t.build(d, leftIdx, depth+1),
		right:     t.build(d, rightIdx, depth+1),
	}
}

// candidateFeatures returns the feature indices examined at a split.
func (t *DecisionTree) candidateFeatures(nf int) []int {
	if t.FeatureSample <= 0 || t.FeatureSample >= nf {
		all := make([]int, nf)
		for i := range all {
			all[i] = i
		}
		return all
	}
	perm := t.rng.Perm(nf)
	return perm[:t.FeatureSample]
}

// distinctThresholds returns split thresholds between distinct feature
// values (midpoints). Binary data yields the single threshold 0.5.
func distinctThresholds(d *Dataset, idx []int, f int) []float64 {
	seen := make(map[float64]bool, 4)
	for _, i := range idx {
		seen[d.Instances[i].Features[f]] = true
	}
	if len(seen) <= 1 {
		return nil
	}
	vals := make([]float64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	// Insertion sort (tiny sets).
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	out := make([]float64, 0, len(vals)-1)
	for i := 0; i+1 < len(vals); i++ {
		out = append(out, (vals[i]+vals[i+1])/2)
	}
	return out
}

// Prob implements Prober.
func (t *DecisionTree) Prob(features []float64) float64 {
	n := t.root
	for n != nil && !n.leaf {
		if n.feature < len(features) && features[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return 0.5
	}
	return n.prob
}

// Predict implements Classifier.
func (t *DecisionTree) Predict(features []float64) bool {
	return t.Prob(features) >= 0.5
}

// NewRandomTree returns a Random Tree: a decision tree considering
// ceil(sqrt(n))+1 random features per split (WEKA RandomTree default uses
// log2(n)+1; sqrt is the common forest variant — both are random subspace
// trees). numFeatures may be 0 if unknown at construction; the sample size
// is then fixed at training time.
func NewRandomTree(numFeatures int, seed int64) *DecisionTree {
	k := 0
	if numFeatures > 0 {
		k = int(math.Ceil(math.Sqrt(float64(numFeatures))))
	}
	return &DecisionTree{FeatureSample: k, Seed: seed}
}
