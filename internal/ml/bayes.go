package ml

import "math"

// NaiveBayes is a Bernoulli naive Bayes classifier with Laplace smoothing —
// one of the candidate models re-evaluated when selecting the top 3
// (WAP's original work compared Naive Bayes, K-NN, tree and linear models).
type NaiveBayes struct {
	// Alpha is the Laplace smoothing constant (default 1).
	Alpha float64

	logPriorPos float64
	logPriorNeg float64
	// logProb[feature][label01] holds log P(feature=1 | label).
	logProbPos []float64
	logProbNeg []float64
}

var _ Classifier = (*NaiveBayes)(nil)
var _ Prober = (*NaiveBayes)(nil)

// Name implements Classifier.
func (nb *NaiveBayes) Name() string { return "Naive Bayes" }

// Train implements Classifier.
func (nb *NaiveBayes) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if nb.Alpha == 0 {
		nb.Alpha = 1
	}
	n := d.NumFeatures()
	posCount, negCount := 0, 0
	onPos := make([]float64, n)
	onNeg := make([]float64, n)
	for _, in := range d.Instances {
		if in.Label {
			posCount++
			for j, f := range in.Features {
				if f != 0 {
					onPos[j]++
				}
			}
		} else {
			negCount++
			for j, f := range in.Features {
				if f != 0 {
					onNeg[j]++
				}
			}
		}
	}
	total := float64(posCount + negCount)
	// Smoothed priors guard against single-class training sets.
	nb.logPriorPos = math.Log((float64(posCount) + nb.Alpha) / (total + 2*nb.Alpha))
	nb.logPriorNeg = math.Log((float64(negCount) + nb.Alpha) / (total + 2*nb.Alpha))
	nb.logProbPos = make([]float64, n)
	nb.logProbNeg = make([]float64, n)
	for j := 0; j < n; j++ {
		nb.logProbPos[j] = math.Log((onPos[j] + nb.Alpha) / (float64(posCount) + 2*nb.Alpha))
		nb.logProbNeg[j] = math.Log((onNeg[j] + nb.Alpha) / (float64(negCount) + 2*nb.Alpha))
	}
	return nil
}

// logOdds computes log P(pos|x) - log P(neg|x) up to a shared constant.
func (nb *NaiveBayes) logOdds(features []float64) float64 {
	lp := nb.logPriorPos
	ln := nb.logPriorNeg
	for j := 0; j < len(nb.logProbPos) && j < len(features); j++ {
		if features[j] != 0 {
			lp += nb.logProbPos[j]
			ln += nb.logProbNeg[j]
		} else {
			lp += log1mexp(nb.logProbPos[j])
			ln += log1mexp(nb.logProbNeg[j])
		}
	}
	return lp - ln
}

// log1mexp computes log(1 - exp(x)) for x < 0.
func log1mexp(x float64) float64 {
	return math.Log1p(-math.Exp(x))
}

// Predict implements Classifier.
func (nb *NaiveBayes) Predict(features []float64) bool {
	return nb.logOdds(features) >= 0
}

// Prob implements Prober.
func (nb *NaiveBayes) Prob(features []float64) float64 {
	return 1 / (1 + math.Exp(-nb.logOdds(features)))
}

// KNN is a k-nearest-neighbours classifier with Hamming distance on binary
// features — WEKA's IBk over this data.
type KNN struct {
	// K is the neighbourhood size (default 5).
	K int

	data *Dataset
}

var _ Classifier = (*KNN)(nil)
var _ Prober = (*KNN)(nil)

// Name implements Classifier.
func (k *KNN) Name() string { return "K-NN" }

// Train implements Classifier (lazy learner: stores the data).
func (k *KNN) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	if k.K == 0 {
		k.K = 5
	}
	k.data = d.Clone()
	return nil
}

// Prob implements Prober: the positive fraction among the K nearest.
func (k *KNN) Prob(features []float64) float64 {
	if k.data == nil || k.data.Len() == 0 {
		return 0.5
	}
	type hit struct {
		dist  int
		label bool
	}
	// Selection of the K nearest by simple partial scan (data sets here are
	// small; no need for trees).
	best := make([]hit, 0, k.K+1)
	for _, in := range k.data.Instances {
		d := hamming(features, in.Features)
		h := hit{dist: d, label: in.Label}
		pos := len(best)
		for pos > 0 && best[pos-1].dist > d {
			pos--
		}
		if pos < k.K {
			best = append(best, hit{})
			copy(best[pos+1:], best[pos:])
			best[pos] = h
			if len(best) > k.K {
				best = best[:k.K]
			}
		}
	}
	posCount := 0
	for _, h := range best {
		if h.label {
			posCount++
		}
	}
	return float64(posCount) / float64(len(best))
}

// Predict implements Classifier.
func (k *KNN) Predict(features []float64) bool { return k.Prob(features) >= 0.5 }

func hamming(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	d := 0
	for i := 0; i < n; i++ {
		if (a[i] != 0) != (b[i] != 0) {
			d++
		}
	}
	d += len(a) - n + len(b) - n
	return d
}
