package ml

import "sort"

// ROCPoint is one point of a receiver operating characteristic curve.
type ROCPoint struct {
	// FPR is the false positive rate (x axis).
	FPR float64
	// TPR is the true positive rate (y axis).
	TPR float64
	// Threshold is the probability cut producing this point.
	Threshold float64
}

// ROC computes the ROC curve of a probabilistic classifier over a dataset:
// each distinct predicted probability becomes a threshold. The curve is
// returned in increasing-FPR order, starting at (0,0) and ending at (1,1).
func ROC(p Prober, d *Dataset) []ROCPoint {
	type scored struct {
		prob  float64
		label bool
	}
	items := make([]scored, 0, d.Len())
	pos, neg := 0, 0
	for _, in := range d.Instances {
		items = append(items, scored{prob: p.Prob(in.Features), label: in.Label})
		if in.Label {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return []ROCPoint{{FPR: 0, TPR: 0, Threshold: 1}, {FPR: 1, TPR: 1, Threshold: 0}}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].prob > items[j].prob })

	curve := []ROCPoint{{FPR: 0, TPR: 0, Threshold: 1.0000001}}
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		// Consume ties together so the curve is well defined.
		thr := items[i].prob
		for i < len(items) && items[i].prob == thr {
			if items[i].label {
				tp++
			} else {
				fp++
			}
			i++
		}
		curve = append(curve, ROCPoint{
			FPR:       float64(fp) / float64(neg),
			TPR:       float64(tp) / float64(pos),
			Threshold: thr,
		})
	}
	last := curve[len(curve)-1]
	if last.FPR != 1 || last.TPR != 1 {
		curve = append(curve, ROCPoint{FPR: 1, TPR: 1, Threshold: 0})
	}
	return curve
}

// AUC computes the area under the ROC curve by trapezoidal integration.
func AUC(p Prober, d *Dataset) float64 {
	curve := ROC(p, d)
	area := 0.0
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area
}

// CrossValidatedAUC computes AUC with k-fold cross-validation: each fold's
// test probabilities come from a model trained on the other folds. The
// factory must return a Prober.
func CrossValidatedAUC(factory func() Classifier, d *Dataset, k int, seed int64) (float64, error) {
	// Reuse CrossValidate's stratified folding by evaluating per-fold and
	// pooling the scored instances.
	folds, err := stratifiedFolds(d, k, seed)
	if err != nil {
		return 0, err
	}
	pooled := &Dataset{}
	var probs []float64
	for fi := range folds {
		inTest := make(map[int]bool, len(folds[fi]))
		for _, i := range folds[fi] {
			inTest[i] = true
		}
		train := &Dataset{}
		for i, in := range d.Instances {
			if !inTest[i] {
				train.Instances = append(train.Instances, in)
			}
		}
		c := factory()
		p, ok := c.(Prober)
		if !ok {
			return 0, errNotProber
		}
		if err := c.Train(train); err != nil {
			return 0, err
		}
		for _, i := range folds[fi] {
			pooled.Instances = append(pooled.Instances, d.Instances[i])
			probs = append(probs, p.Prob(d.Instances[i].Features))
		}
	}
	frozen := &frozenProber{probs: probs}
	return AUC(frozen, pooled), nil
}

// frozenProber replays precomputed probabilities in instance order; it lets
// AUC pool out-of-fold predictions.
type frozenProber struct {
	probs []float64
	next  int
}

// Prob implements Prober by replaying the recorded sequence.
func (f *frozenProber) Prob([]float64) float64 {
	p := f.probs[f.next%len(f.probs)]
	f.next++
	return p
}
