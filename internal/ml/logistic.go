package ml

import "math"

// LogisticRegression is a binary logistic-regression classifier trained by
// batch gradient descent with L2 regularization — the "Logistic Regression"
// entry of the paper's top-3 ensemble.
type LogisticRegression struct {
	// LearningRate is the gradient step size (default 0.5).
	LearningRate float64
	// Epochs is the number of full passes (default 400).
	Epochs int
	// L2 is the regularization strength (default 1e-3).
	L2 float64

	weights []float64
	bias    float64
}

var _ Classifier = (*LogisticRegression)(nil)
var _ Prober = (*LogisticRegression)(nil)

// Name implements Classifier.
func (lr *LogisticRegression) Name() string { return "Logistic Regression" }

func (lr *LogisticRegression) defaults() {
	if lr.LearningRate == 0 {
		lr.LearningRate = 0.5
	}
	if lr.Epochs == 0 {
		lr.Epochs = 400
	}
	if lr.L2 == 0 {
		lr.L2 = 1e-3
	}
}

// Train implements Classifier.
func (lr *LogisticRegression) Train(d *Dataset) error {
	if err := validateTrain(d); err != nil {
		return err
	}
	lr.defaults()
	n := d.NumFeatures()
	lr.weights = make([]float64, n)
	lr.bias = 0
	m := float64(d.Len())

	gradW := make([]float64, n)
	for epoch := 0; epoch < lr.Epochs; epoch++ {
		for i := range gradW {
			gradW[i] = 0
		}
		gradB := 0.0
		for _, in := range d.Instances {
			p := lr.Prob(in.Features)
			y := 0.0
			if in.Label {
				y = 1
			}
			err := p - y
			for j, x := range in.Features {
				gradW[j] += err * x
			}
			gradB += err
		}
		for j := range lr.weights {
			lr.weights[j] -= lr.LearningRate * (gradW[j]/m + lr.L2*lr.weights[j])
		}
		lr.bias -= lr.LearningRate * gradB / m
	}
	return nil
}

// Prob implements Prober.
func (lr *LogisticRegression) Prob(features []float64) float64 {
	z := lr.bias
	for j, w := range lr.weights {
		if j < len(features) {
			z += w * features[j]
		}
	}
	return 1 / (1 + math.Exp(-z))
}

// Predict implements Classifier.
func (lr *LogisticRegression) Predict(features []float64) bool {
	return lr.Prob(features) >= 0.5
}

// Weights returns a copy of the trained feature weights (nil before
// training). Positive weights push toward the positive (FP) class — the
// basis of symptom-importance reporting.
func (lr *LogisticRegression) Weights() []float64 {
	return append([]float64(nil), lr.weights...)
}

// Bias returns the trained intercept.
func (lr *LogisticRegression) Bias() float64 { return lr.bias }
