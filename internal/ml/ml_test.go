package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a learnable dataset: label = f1 OR (f2 AND f3), with
// noise-free binary features.
func synthDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		attrs := make([]bool, 8)
		for j := range attrs {
			attrs[j] = rng.Intn(2) == 1
		}
		label := attrs[1] || (attrs[2] && attrs[3])
		d.Instances = append(d.Instances, NewInstance(attrs, label))
	}
	return d
}

// linsepDataset builds a linearly separable dataset: label = (x0+x1 > x2+x3).
func linsepDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{}
	for i := 0; i < n; i++ {
		f := make([]float64, 4)
		for j := range f {
			f[j] = rng.Float64()
		}
		label := f[0]+f[1] > f[2]+f[3]+0.1 // margin keeps it separable
		if !label && f[0]+f[1] > f[2]+f[3] {
			continue // drop ambiguous band
		}
		d.Instances = append(d.Instances, Instance{Features: f, Label: label})
	}
	return d
}

func accuracy(t *testing.T, c Classifier, d *Dataset) float64 {
	t.Helper()
	if err := c.Train(d); err != nil {
		t.Fatalf("%s train: %v", c.Name(), err)
	}
	correct := 0
	for _, in := range d.Instances {
		if c.Predict(in.Features) == in.Label {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestLogisticLearnsLinear(t *testing.T) {
	d := linsepDataset(300, 1)
	acc := accuracy(t, &LogisticRegression{}, d)
	if acc < 0.95 {
		t.Errorf("logistic training accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestSVMLearnsLinear(t *testing.T) {
	d := linsepDataset(300, 2)
	acc := accuracy(t, &SVM{Seed: 42}, d)
	if acc < 0.95 {
		t.Errorf("svm training accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTreeLearnsBoolean(t *testing.T) {
	d := synthDataset(200, 3)
	acc := accuracy(t, &DecisionTree{}, d)
	if acc < 0.99 {
		t.Errorf("tree training accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestRandomTreeLearnsBoolean(t *testing.T) {
	d := synthDataset(300, 4)
	acc := accuracy(t, NewRandomTree(8, 5), d)
	if acc < 0.9 {
		t.Errorf("random tree training accuracy = %.3f, want >= 0.9", acc)
	}
}

func TestForestLearnsBoolean(t *testing.T) {
	d := synthDataset(300, 5)
	acc := accuracy(t, &RandomForest{Seed: 9}, d)
	if acc < 0.97 {
		t.Errorf("forest training accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestEnsembleMajority(t *testing.T) {
	d := synthDataset(300, 6)
	e := NewTop3(17)
	acc := accuracy(t, e, d)
	if acc < 0.95 {
		t.Errorf("ensemble training accuracy = %.3f, want >= 0.95", acc)
	}
	votes := e.Votes(d.Instances[0].Features)
	if len(votes) != 3 {
		t.Errorf("votes = %v", votes)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	for _, c := range []Classifier{
		&LogisticRegression{}, &SVM{}, &DecisionTree{}, &RandomForest{},
	} {
		if err := c.Train(&Dataset{}); err == nil {
			t.Errorf("%s: want error on empty training set", c.Name())
		}
	}
}

func TestTrainRaggedDataset(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		{Features: []float64{1, 0}, Label: true},
		{Features: []float64{1}, Label: false},
	}}
	if err := (&LogisticRegression{}).Train(d); err == nil {
		t.Error("want error on ragged features")
	}
}

func TestDeterminism(t *testing.T) {
	d := synthDataset(200, 7)
	for _, mk := range []func() Classifier{
		func() Classifier { return &SVM{Seed: 3} },
		func() Classifier { return &RandomForest{Seed: 3, Trees: 15} },
		func() Classifier { return NewRandomTree(8, 3) },
		func() Classifier { return &LogisticRegression{} },
	} {
		a, b := mk(), mk()
		if err := a.Train(d); err != nil {
			t.Fatal(err)
		}
		if err := b.Train(d); err != nil {
			t.Fatal(err)
		}
		for _, in := range d.Instances {
			if a.Predict(in.Features) != b.Predict(in.Features) {
				t.Errorf("%s: nondeterministic prediction", a.Name())
				break
			}
		}
	}
}

func TestConfusionMatrixCounts(t *testing.T) {
	var cm ConfusionMatrix
	cm.Add(true, true)   // tp
	cm.Add(true, true)   // tp
	cm.Add(true, false)  // fp
	cm.Add(false, true)  // fn
	cm.Add(false, false) // tn
	cm.Add(false, false) // tn
	cm.Add(false, false) // tn
	if cm.TP != 2 || cm.FP != 1 || cm.FN != 1 || cm.TN != 3 {
		t.Fatalf("matrix = %+v", cm)
	}
	m := cm.Compute()
	if got, want := m.TPP, 2.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("tpp = %v, want %v", got, want)
	}
	if got, want := m.PFP, 1.0/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("pfp = %v, want %v", got, want)
	}
	if got, want := m.ACC, 5.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("acc = %v, want %v", got, want)
	}
	if got, want := m.Jacc, 2.0/4; math.Abs(got-want) > 1e-12 {
		t.Errorf("jacc = %v, want %v", got, want)
	}
}

// Property: Table II identities hold for any matrix — inform = tpp - pfp and
// pr is the mean of prfp and ppd; all metrics are within [0, 1] (inform may
// be negative down to -1).
func TestMetricsIdentitiesQuick(t *testing.T) {
	f := func(tp, fp, fn, tn uint8) bool {
		cm := ConfusionMatrix{TP: int(tp), FP: int(fp), FN: int(fn), TN: int(tn)}
		m := cm.Compute()
		if math.Abs(m.Inform-(m.TPP+m.PD-1)) > 1e-9 {
			return false
		}
		if math.Abs(m.PR-(m.PRFP+m.PPD)/2) > 1e-9 {
			return false
		}
		for _, v := range []float64{m.TPP, m.PFP, m.PRFP, m.PD, m.PPD, m.ACC, m.PR, m.Jacc} {
			if v < 0 || v > 1 {
				return false
			}
		}
		return m.Inform >= -1 && m.Inform <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossValidateStratified(t *testing.T) {
	d := synthDataset(200, 8)
	cm, err := CrossValidate(func() Classifier { return &LogisticRegression{} }, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cm.N() != d.Len() {
		t.Errorf("cv predictions = %d, want %d", cm.N(), d.Len())
	}
	m := cm.Compute()
	if m.ACC < 0.9 {
		t.Errorf("cv accuracy = %.3f, want >= 0.9", m.ACC)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := synthDataset(5, 9)
	if _, err := CrossValidate(func() Classifier { return &LogisticRegression{} }, d, 1, 0); err == nil {
		t.Error("want error for k < 2")
	}
	if _, err := CrossValidate(func() Classifier { return &LogisticRegression{} }, d, 10, 0); err == nil {
		t.Error("want error for k > n")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := synthDataset(120, 10)
	mk := func() Classifier { return &SVM{Seed: 5} }
	a, err := CrossValidate(mk, d, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CrossValidate(mk, d, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("cv not deterministic: %v vs %v", a, b)
	}
}

func TestEvaluateHoldout(t *testing.T) {
	train := synthDataset(200, 11)
	test := synthDataset(80, 12)
	cm, err := Evaluate(&RandomForest{Seed: 1, Trees: 25}, train, test)
	if err != nil {
		t.Fatal(err)
	}
	if cm.N() != test.Len() {
		t.Errorf("N = %d, want %d", cm.N(), test.Len())
	}
	if cm.Compute().ACC < 0.9 {
		t.Errorf("holdout acc = %.3f", cm.Compute().ACC)
	}
}

func TestProbCalibrationBounds(t *testing.T) {
	d := synthDataset(150, 13)
	for _, p := range []Prober{&LogisticRegression{}, &SVM{Seed: 2}, &RandomForest{Seed: 2, Trees: 10}} {
		c := p.(Classifier)
		if err := c.Train(d); err != nil {
			t.Fatal(err)
		}
		for _, in := range d.Instances {
			v := p.Prob(in.Features)
			if v < 0 || v > 1 || math.IsNaN(v) {
				t.Errorf("%s prob out of range: %v", c.Name(), v)
			}
		}
	}
}

func TestDatasetHelpers(t *testing.T) {
	d := synthDataset(50, 14)
	pos, neg := d.CountLabels()
	if pos+neg != 50 {
		t.Errorf("counts = %d + %d", pos, neg)
	}
	c := d.Clone()
	c.Instances[0].Features[0] = 42
	if d.Instances[0].Features[0] == 42 {
		t.Error("clone shares feature storage")
	}
	rng := rand.New(rand.NewSource(1))
	c.Shuffle(rng)
	if c.Len() != d.Len() {
		t.Error("shuffle changed length")
	}
}

// Property: a single-class training set yields a constant classifier for
// trees (no split possible) without error.
func TestSingleClassTraining(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 20; i++ {
		d.Instances = append(d.Instances, NewInstance([]bool{i%2 == 0, i%3 == 0}, true))
	}
	for _, c := range []Classifier{&DecisionTree{}, &RandomForest{Seed: 1, Trees: 5}, &LogisticRegression{}, &SVM{Seed: 1}} {
		if err := c.Train(d); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !c.Predict(d.Instances[0].Features) {
			t.Errorf("%s: single-class set should predict true", c.Name())
		}
	}
}
