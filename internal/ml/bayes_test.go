package ml

import (
	"math"
	"testing"
)

func TestNaiveBayesLearns(t *testing.T) {
	d := synthDataset(300, 21)
	acc := accuracy(t, &NaiveBayes{}, d)
	if acc < 0.9 {
		t.Errorf("NB training accuracy = %.3f", acc)
	}
}

func TestNaiveBayesProbBounds(t *testing.T) {
	d := synthDataset(150, 22)
	nb := &NaiveBayes{}
	if err := nb.Train(d); err != nil {
		t.Fatal(err)
	}
	for _, in := range d.Instances {
		p := nb.Prob(in.Features)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("prob = %v", p)
		}
	}
}

func TestNaiveBayesSingleClass(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 10; i++ {
		d.Instances = append(d.Instances, NewInstance([]bool{i%2 == 0}, true))
	}
	nb := &NaiveBayes{}
	if err := nb.Train(d); err != nil {
		t.Fatal(err)
	}
	if !nb.Predict([]float64{1}) {
		t.Error("single-class NB should predict the only class")
	}
}

func TestKNNLearns(t *testing.T) {
	d := synthDataset(300, 23)
	acc := accuracy(t, &KNN{K: 3}, d)
	if acc < 0.85 {
		t.Errorf("KNN training accuracy = %.3f", acc)
	}
}

func TestKNNExactMatchDominates(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		NewInstance([]bool{true, false, false}, true),
		NewInstance([]bool{false, true, true}, false),
		NewInstance([]bool{false, true, false}, false),
		NewInstance([]bool{false, false, true}, false),
	}}
	k := &KNN{K: 1}
	if err := k.Train(d); err != nil {
		t.Fatal(err)
	}
	if !k.Predict([]float64{1, 0, 0}) {
		t.Error("exact positive neighbour should win with K=1")
	}
	if k.Predict([]float64{0, 1, 1}) {
		t.Error("exact negative neighbour should win with K=1")
	}
}

func TestKNNUntrained(t *testing.T) {
	k := &KNN{}
	if p := k.Prob([]float64{1}); p != 0.5 {
		t.Errorf("untrained prob = %v, want 0.5", p)
	}
}

func TestHammingDistance(t *testing.T) {
	cases := []struct {
		a, b []float64
		want int
	}{
		{[]float64{1, 0, 1}, []float64{1, 0, 1}, 0},
		{[]float64{1, 0, 1}, []float64{0, 0, 1}, 1},
		{[]float64{1, 1}, []float64{0, 0}, 2},
		{[]float64{1, 0, 1}, []float64{1}, 2}, // length mismatch counted
	}
	for i, c := range cases {
		if got := hamming(c.a, c.b); got != c.want {
			t.Errorf("case %d: hamming = %d, want %d", i, got, c.want)
		}
	}
}

func TestNewClassifiersDeterministic(t *testing.T) {
	d := synthDataset(150, 24)
	for _, mk := range []func() Classifier{
		func() Classifier { return &NaiveBayes{} },
		func() Classifier { return &KNN{K: 3} },
	} {
		a, b := mk(), mk()
		if err := a.Train(d); err != nil {
			t.Fatal(err)
		}
		if err := b.Train(d); err != nil {
			t.Fatal(err)
		}
		for _, in := range d.Instances {
			if a.Predict(in.Features) != b.Predict(in.Features) {
				t.Fatalf("%s nondeterministic", a.Name())
			}
		}
	}
}

func TestNewClassifiersRejectEmpty(t *testing.T) {
	for _, c := range []Classifier{&NaiveBayes{}, &KNN{}} {
		if err := c.Train(&Dataset{}); err == nil {
			t.Errorf("%s: want error on empty set", c.Name())
		}
	}
}
