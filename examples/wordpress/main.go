// WordPress: analyze a synthetic plugin with the wpsqli weapon (Section
// IV-C.3), which knows $wpdb's sinks, WordPress sanitizers (esc_sql,
// $wpdb->prepare) and dynamic symptoms (sanitize_text_field, absint), then
// apply the san_wpsqli fix.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/weapon"
)

const plugin = `<?php
/*
Plugin Name: Demo Shop
*/

// BUG: raw POST data concatenated into a $wpdb query.
function demo_find_product() {
    global $wpdb;
    $sku = $_POST['sku'];
    return $wpdb->get_row("SELECT * FROM wp_demo_products WHERE sku = '" . $sku . "'");
}

// OK: placeholder queries via $wpdb->prepare are safe.
function demo_find_order($wpdb) {
    $id = $_GET['order'];
    $sql = $wpdb->prepare("SELECT * FROM wp_demo_orders WHERE id = %d", $id);
    return $wpdb->get_row($sql);
}

// OK: esc_sql is WordPress's escaping helper.
function demo_search($wpdb) {
    $term = esc_sql($_GET['s']);
    return $wpdb->get_results("SELECT * FROM wp_demo_products WHERE name LIKE '%" . $term . "%'");
}

// Guarded by absint: flagged by the detector, dismissed by the predictor
// thanks to the weapon's dynamic symptom (absint ~ intval).
function demo_count($wpdb) {
    $cat = $_GET['cat'];
    if (absint($cat) == 0) { exit; }
    return $wpdb->get_var("SELECT COUNT(*) FROM wp_demo_products WHERE cat=" . $cat);
}`

func main() {
	var wp *weapon.Weapon
	for _, spec := range weapon.BuiltinSpecs() {
		if spec.Name == "wpsqli" {
			w, err := weapon.Generate(spec)
			if err != nil {
				log.Fatal(err)
			}
			wp = w
		}
	}

	engine, err := core.New(core.Options{
		Mode:    core.ModeWAPe,
		Weapons: []*weapon.Weapon{wp},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}

	project := core.LoadMap("demo-shop", map[string]string{"demo-shop.php": plugin})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("wpsqli weapon results:")
	for _, gf := range report.Group(rep) {
		f := gf.Findings[0]
		verdict := "REAL VULNERABILITY"
		if gf.PredictedFP {
			verdict = "predicted false positive"
		}
		fmt.Printf("  line %-3d sink %-12s in %-18s -> %s\n",
			gf.Line, f.Candidate.SinkName, f.Candidate.EnclosingFunc, verdict)
	}

	fixed, applied, err := engine.FixProject(rep)
	if err != nil {
		log.Fatal(err)
	}
	for path, corrs := range applied {
		fmt.Printf("\napplied %d correction(s) to %s:\n", len(corrs), path)
		for _, c := range corrs {
			fmt.Printf("  line %d: %s\n", c.Line, c.After)
		}
	}
	_ = fixed
}
