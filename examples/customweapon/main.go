// Custom weapon: extend the tool to a brand-new vulnerability class —
// "template injection" through a fictitious render_template() engine —
// without touching any detector code, exactly as the paper's weapon
// generator does (Section III-D). The weapon supplies the sensitive sink,
// the sanitization function, a fix template and a dynamic symptom.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/corrector"
	"repro/internal/symptom"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

const app = `<?php
// Profile page rendered through a homegrown template engine.
$bio = $_POST['bio'];
render_template("profile", "Bio: " . $bio);

$safe = tpl_escape($_POST['quote']);
render_template("profile", "Quote: " . $safe);

$nick = $_GET['nick'];
if (val_word($nick)) {
    render_template("badge", $nick);
}`

func main() {
	// 1. Describe the new class: its sink, sanitizer, fix and symptoms.
	spec := weapon.Spec{
		Name:        "tpli",
		Description: "Template injection through render_template()",
		Sinks:       []vuln.Sink{{Name: "render_template", Args: []int{1}}},
		Sanitizers:  []string{"tpl_escape"},
		Fix: corrector.Template{
			Kind:    corrector.PHPSanitization,
			SanFunc: "tpl_escape",
		},
		Dynamics: []symptom.Dynamic{
			// val_word behaves like a pattern check for the FP predictor.
			{Func: "val_word", Category: symptom.Validation, MapsTo: "preg_match"},
		},
	}

	// 2. Generate the weapon and round-trip it through the spec-file format
	// (what `weaponsmith` writes to disk).
	var buf strings.Builder
	if err := weapon.WriteSpec(&buf, &spec); err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated weapon spec:")
	fmt.Println(buf.String())
	parsed, err := weapon.ParseSpec(strings.NewReader(buf.String()))
	if err != nil {
		log.Fatal(err)
	}
	w, err := weapon.Generate(*parsed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weapon ready: activate with `wap %s`\n\n", w.Flag())

	// 3. Link it into an engine running ONLY this weapon and analyze.
	engine, err := core.New(core.Options{
		Mode:    core.ModeWAPe,
		Classes: []vuln.ClassID{}, // no native classes
		Weapons: []*weapon.Weapon{w},
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}
	project := core.LoadMap("templates", map[string]string{"profile.php": app})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}

	for _, f := range rep.Findings {
		verdict := "REAL VULNERABILITY"
		if f.PredictedFP {
			verdict = "predicted false positive (val_word guard recognized)"
		}
		fmt.Printf("finding at line %d: %s\n", f.Candidate.SinkPos.Line, verdict)
	}

	// 4. Fix the confirmed vulnerability with the weapon's generated fix.
	fixed, _, err := engine.FixProject(rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncorrected source:")
	fmt.Println(fixed["profile.php"])
	if len(rep.Vulnerabilities()) == 0 {
		fmt.Fprintln(os.Stderr, "expected at least one vulnerability")
		os.Exit(1)
	}
}
