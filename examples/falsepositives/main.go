// False positives: a walkthrough of the prediction pipeline (paper Fig. 3)
// on three flows — raw, validated, and custom-sanitized — showing the
// extracted symptoms, the 61-attribute vector and each classifier's vote.
package main

import (
	"fmt"
	"log"

	"repro/internal/dataset"
	"repro/internal/ml"
	"repro/internal/php/parser"
	"repro/internal/symptom"
	"repro/internal/taint"
	"repro/internal/vuln"
)

var flows = []struct {
	name string
	src  string
}{
	{"raw flow (real vulnerability)", `<?php
$id = $_GET['id'];
mysql_query("SELECT login FROM users WHERE id=" . $id);`},
	{"validated flow (false positive)", `<?php
$id = $_GET['id'];
if (!isset($_GET['id']) || !is_numeric($id)) { exit; }
mysql_query("SELECT login FROM users WHERE id=" . $id);`},
	{"regex-guarded flow (false positive)", `<?php
$code = $_GET['code'];
if (!preg_match('/^[A-Z]{2}[0-9]{4}$/', $code)) { die("bad code"); }
mysql_query("SELECT * FROM coupons WHERE code='" . $code . "'");`},
}

func main() {
	// Train the paper's top-3 ensemble on the 256-instance set.
	train := dataset.Generate(dataset.Config{Seed: 2016})
	ensemble := ml.NewTop3(2016)
	if err := ensemble.Train(train); err != nil {
		log.Fatal(err)
	}
	names := []string{"SVM", "Logistic Regression", "Random Forest"}
	extractor := symptom.NewExtractor(nil)

	for _, flow := range flows {
		fmt.Printf("=== %s ===\n", flow.name)
		file, errs := parser.Parse("flow.php", flow.src)
		if len(errs) > 0 {
			log.Fatalf("parse: %v", errs)
		}
		cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(file)
		if len(cands) != 1 {
			log.Fatalf("expected 1 candidate, got %d", len(cands))
		}

		// Step 1: collect symptoms (Fig. 3 "collecting symptoms").
		symptoms := extractor.Extract(cands[0], file)
		fmt.Printf("symptoms: %v\n", symptom.PresentNames(symptom.NewVectorFromSet(symptoms, false)))

		// Step 2: create the attribute vector.
		vec := symptom.NewVectorFromSet(symptoms, false)
		set := 0
		for _, a := range vec.Attrs {
			if a {
				set++
			}
		}
		fmt.Printf("attribute vector: %d of %d attributes set\n", set, len(vec.Attrs))

		// Step 3: classify with the top-3 ensemble.
		inst := ml.NewInstance(vec.Attrs, false)
		votes := ensemble.Votes(inst.Features)
		for i, v := range votes {
			verdict := "real vulnerability"
			if v {
				verdict = "false positive"
			}
			fmt.Printf("  %-20s -> %s\n", names[i], verdict)
		}
		if ensemble.Predict(inst.Features) {
			fmt.Println("ensemble verdict: FALSE POSITIVE (not reported)")
		} else {
			fmt.Println("ensemble verdict: REAL VULNERABILITY (sent to the code corrector)")
		}
		fmt.Println()
	}
}
