// Autofix: detect vulnerabilities of several classes in one file and show
// the corrected source side by side — the code corrector inserts each
// class's fix at the sink line and appends the fix definitions.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

const page = `<?php
// A messy endpoint with four different vulnerability classes.
$id   = $_GET['id'];
$name = $_GET['name'];
$next = $_GET['next'];
$dir  = $_POST['dir'];

mysql_query("DELETE FROM carts WHERE id=" . $id);
echo "<p>Goodbye, " . $name . "!</p>";
header("Location: " . $next);
system("ls -la " . $dir);
`

func main() {
	engine, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}

	project := core.LoadMap("autofix", map[string]string{"endpoint.php": page})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found %d vulnerabilities\n\n--- original ---\n%s\n", len(rep.Vulnerabilities()), page)

	fixed, applied, err := engine.FixProject(rep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- corrected (%d fixes) ---\n%s\n", len(applied["endpoint.php"]), fixed["endpoint.php"])

	// Verify: re-analyzing the corrected file finds nothing.
	again, err := engine.Analyze(core.LoadMap("autofix-fixed", map[string]string{"endpoint.php": fixed["endpoint.php"]}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-analysis of the corrected file: %d vulnerabilities\n", len(again.Vulnerabilities()))
}
