// Quickstart: analyze a small vulnerable PHP page for SQL injection and
// reflected XSS, print each confirmed vulnerability with its taint trace.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/report"
)

const page = `<?php
// A tiny search page with two classic bugs and one safe flow.
$term = $_GET['q'];
$rows = mysql_query("SELECT title FROM posts WHERE title LIKE '%" . $term . "%'");

echo "<h1>Results for " . $term . "</h1>";

$page = intval($_GET['page']);
mysql_query("SELECT title FROM posts LIMIT " . $page . ", 10");
?>
<p>done</p>`

func main() {
	engine, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Train(); err != nil {
		log.Fatal(err)
	}

	project := core.LoadMap("quickstart", map[string]string{"search.php": page})
	rep, err := engine.Analyze(project)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("analyzed %d file(s), %d line(s) in %v\n\n",
		len(project.Files), project.TotalLines(), rep.Duration)
	for _, gf := range report.Group(rep) {
		f := gf.Findings[0]
		status := "VULNERABILITY"
		if gf.PredictedFP {
			status = "predicted false positive"
		}
		fmt.Printf("[%s] %s at %s:%d (sink %s)\n",
			gf.Group, status, gf.File, gf.Line, f.Candidate.SinkName)
		for _, step := range f.Candidate.Value.Trace {
			fmt.Printf("    %-28s line %d\n", step.Desc, step.Pos.Line)
		}
	}
	fmt.Printf("\n%d real vulnerabilities, %d predicted false positives\n",
		len(rep.Vulnerabilities()), len(rep.FalsePositives()))
}
