// Package main_test is the benchmark harness: one benchmark per table and
// figure of the paper's evaluation (printing the reproduced artifact on the
// first iteration), plus performance and ablation benchmarks.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package main_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ir"
	"repro/internal/ml"
	"repro/internal/php/lexer"
	"repro/internal/php/parser"
	"repro/internal/resultstore"
	"repro/internal/symptom"
	"repro/internal/taint"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

var printOnce sync.Map

// printArtifact emits the reproduced table/figure once per benchmark name.
func printArtifact(b *testing.B, text string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		fmt.Printf("\n%s\n", text)
	}
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

func BenchmarkTable1SymptomCatalog(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table1()
	}
	printArtifact(b, out)
}

func BenchmarkTable2ClassifierMetrics(b *testing.B) {
	var res *experiments.Table2And3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable2And3(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, experiments.RenderTable2(res))
}

func BenchmarkTable3ConfusionMatrix(b *testing.B) {
	var res *experiments.Table2And3Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable2And3(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, experiments.RenderTable3(res))
}

func BenchmarkTable4SubmoduleSinks(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table4()
	}
	printArtifact(b, out)
}

func BenchmarkTable5WebAppSummary(b *testing.B) {
	var res *experiments.WebAppsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunWebApps(core.ModeWAPe, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, experiments.RenderTable5(res))
}

func BenchmarkTable6VersionComparison(b *testing.B) {
	var old, neu *experiments.WebAppsResult
	var err error
	for i := 0; i < b.N; i++ {
		old, err = experiments.RunWebApps(core.ModeOriginal, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		neu, err = experiments.RunWebApps(core.ModeWAPe, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, experiments.RenderTable6(old, neu))
}

func BenchmarkTable7WordPressPlugins(b *testing.B) {
	var res *experiments.PluginsResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunWordPress(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	printArtifact(b, experiments.RenderTable7(res))
}

// ---------------------------------------------------------------------------
// Figures
// ---------------------------------------------------------------------------

func BenchmarkFig4PluginHistograms(b *testing.B) {
	var fig *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWordPress(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		fig = experiments.RunFig4(res)
	}
	printArtifact(b, experiments.RenderFig4(fig))
}

func BenchmarkFig5VulnsByClass(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		webApps, err := experiments.RunWebApps(core.ModeWAPe, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		plugins, err := experiments.RunWordPress(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.RenderFig5(webApps, plugins)
	}
	printArtifact(b, out)
}

// ---------------------------------------------------------------------------
// Performance benchmarks (the paper's 7.2 s/app average claim)
// ---------------------------------------------------------------------------

// benchApp is a mid-sized generated application reused across benches.
func benchApp() *corpus.App {
	return corpus.WebAppSuite(experiments.DefaultSeed)[16] // vfront, the largest
}

// benchFile returns the largest source file of the benchmark app — the
// shared input of the single-file front-end benchmarks.
func benchFile() (path, src string) {
	for p, s := range benchApp().Files {
		if len(s) > len(src) || (len(s) == len(src) && p < path) {
			path, src = p, s
		}
	}
	return path, src
}

// BenchmarkLexFile isolates the lexer: one file scanned to EOF per iteration.
// Allocation figures are the front end's diet account — `make bench-compare`
// gates on allocs/op and B/op as well as time.
func BenchmarkLexFile(b *testing.B) {
	path, src := benchFile()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		toks, _ := lexer.Tokens(path, src)
		if len(toks) == 0 {
			b.Fatal("no tokens")
		}
	}
}

// BenchmarkParseFile isolates lex+parse of a single file: the unit of work
// the parallel loader distributes across its worker pool.
func BenchmarkParseFile(b *testing.B) {
	path, src := benchFile()
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, _ := parser.Parse(path, src)
		if f == nil {
			b.Fatal("nil ast")
		}
	}
}

// BenchmarkLoadDir measures the full directory front end — walk, read, hash,
// lex, parse, index — over an on-disk Play_sms-scale tree with default
// loader parallelism.
func BenchmarkLoadDir(b *testing.B) {
	app := incrementalBenchApp()
	dir := b.TempDir()
	for path, src := range app.Files {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proj, err := core.LoadDir(app.Name, dir)
		if err != nil {
			b.Fatal(err)
		}
		if len(proj.Files) != len(app.Files) {
			b.Fatalf("loaded %d files, want %d", len(proj.Files), len(app.Files))
		}
	}
}

// BenchmarkLowerFile isolates the AST→IR lowering: one file lowered per
// iteration. This is the one-time per-file cost the IR engine amortizes
// across every weapon-class task.
func BenchmarkLowerFile(b *testing.B) {
	path, src := benchFile()
	f, _ := parser.Parse(path, src)
	if f == nil {
		b.Fatal("nil ast")
	}
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir := ir.LowerFile(f)
		if fir.NumInstrs == 0 {
			b.Fatal("empty lowering")
		}
	}
}

func BenchmarkParser(b *testing.B) {
	app := benchApp()
	totalBytes := 0
	for _, src := range app.Files {
		totalBytes += len(src)
	}
	b.SetBytes(int64(totalBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for path, src := range app.Files {
			f, _ := parser.Parse(path, src)
			if f == nil {
				b.Fatal("nil ast")
			}
		}
	}
}

func BenchmarkTaintSingleClass(b *testing.B) {
	app := benchApp()
	proj := core.LoadMap(app.Name, app.Files)
	cls := vuln.MustGet(vuln.SQLI)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range proj.Files {
			taint.New(taint.Config{Class: cls, Resolver: proj}).File(f.AST)
		}
	}
}

func BenchmarkAnalyzeApp(b *testing.B) {
	app := benchApp()
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	proj := core.LoadMap(app.Name, app.Files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(proj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeAppLegacy is BenchmarkAnalyzeApp on the legacy AST-walking
// taint engine (DisableIR). The IR engine's acceptance gate lives in
// benchtrend -compare: a multi-class scan on the IR engine must not be
// slower than this baseline.
func BenchmarkAnalyzeAppLegacy(b *testing.B) {
	app := benchApp()
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1, DisableIR: true})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	proj := core.LoadMap(app.Name, app.Files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(proj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeAppUncached is BenchmarkAnalyzeApp with the shared summary
// cache and the sink pre-filter disabled — the PR-1 baseline. The ratio
// between the two is the observable speedup of the caching layer; findings
// are identical either way (TestFindingsIdenticalCacheOnOff in
// internal/core).
func BenchmarkAnalyzeAppUncached(b *testing.B) {
	app := benchApp()
	eng, err := core.New(core.Options{
		Mode: core.ModeWAPe, Seed: 1,
		DisableSummaryCache:  true,
		DisableSinkPrefilter: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	proj := core.LoadMap(app.Name, app.Files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(proj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeAppUncachedFused / BenchmarkAnalyzeAppUncachedUnfused pin
// the fused-scheduling speedup on the uncached scan: identical options except
// DisableFusion, so the ratio is exactly the win of evaluating all weapon
// classes in one IR traversal instead of one traversal per class. benchtrend
// -compare gates on fused ≥2× unfused. Findings are byte-identical either
// way (TestFusedDifferential in internal/core).
func BenchmarkAnalyzeAppUncachedFused(b *testing.B) {
	benchAnalyzeUncached(b, false)
}

func BenchmarkAnalyzeAppUncachedUnfused(b *testing.B) {
	benchAnalyzeUncached(b, true)
}

func benchAnalyzeUncached(b *testing.B, disableFusion bool) {
	app := benchApp()
	eng, err := core.New(core.Options{
		Mode: core.ModeWAPe, Seed: 1,
		DisableSummaryCache:  true,
		DisableSinkPrefilter: true,
		DisableFusion:        disableFusion,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	proj := core.LoadMap(app.Name, app.Files)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Analyze(proj); err != nil {
			b.Fatal(err)
		}
	}
}

// incrementalBenchApp is the corpus both incremental benchmarks share: a
// Play_sms-scale tree (the paper's motivating case for rescans — full scans
// of its largest packages took minutes). Incremental reuse is proportional
// to the fraction of tasks untouched by an edit, so it is measured on a
// realistically sized tree, not the 13-file table app.
func incrementalBenchApp() *corpus.App { return corpus.LargeApp(1, 120, 40) }

// BenchmarkAnalyzeAppIncrementalCold is the baseline for
// BenchmarkAnalyzeAppIncremental: a cold full scan of the same corpus,
// parsing every file and executing every task with no result store. Each
// iteration reloads the project from source so no parse or memoized
// file-derived state survives between iterations.
func BenchmarkAnalyzeAppIncrementalCold(b *testing.B) {
	app := incrementalBenchApp()
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proj := core.LoadMap(app.Name, app.Files)
		if _, err := eng.Analyze(proj); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeAppIncremental measures a warm rescan with one changed
// file: the engine runs against a result store populated by a cold scan, and
// each iteration edits the same file (fresh content hash every time) before
// rescanning with parse reuse. Compare against
// BenchmarkAnalyzeAppIncrementalCold — the ratio is the incremental speedup,
// which must stay ≥5× (the bench trajectory in BENCH_analyze.json tracks it
// run over run; `make bench-compare` flags regressions).
func BenchmarkAnalyzeAppIncremental(b *testing.B) {
	app := incrementalBenchApp()
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	store, err := resultstore.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	files := make(map[string]string, len(app.Files))
	paths := make([]string, 0, len(app.Files))
	for path, src := range app.Files {
		files[path] = src
		paths = append(paths, path)
	}
	sort.Strings(paths)
	edit := paths[0]
	proj := core.LoadMap(app.Name, files)
	// Cold scan: populates the store so every iteration below is warm.
	if _, err := eng.AnalyzeContextStore(ctx, proj, store); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		files[edit] = app.Files[edit] + fmt.Sprintf("\n<!-- edit %d -->\n", i)
		next := core.LoadMapIncremental(app.Name, files, proj)
		if _, err := eng.AnalyzeContextStore(ctx, next, store); err != nil {
			b.Fatal(err)
		}
		proj = next
	}
}

// BenchmarkLargeAppThroughput measures full-pipeline throughput on a
// Play_sms-scale application (the paper's largest package was ~249k lines),
// reporting bytes/sec over the source corpus.
func BenchmarkLargeAppThroughput(b *testing.B) {
	app := corpus.LargeApp(1, 120, 40)
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	proj := core.LoadMap(app.Name, app.Files)
	totalBytes := 0
	for _, src := range app.Files {
		totalBytes += len(src)
	}
	b.SetBytes(int64(totalBytes))
	b.ReportMetric(float64(proj.TotalLines()), "lines")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := eng.Analyze(proj)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Vulnerabilities()) == 0 {
			b.Fatal("planted vulnerabilities not found")
		}
	}
}

func BenchmarkTrainEnsemble(b *testing.B) {
	d := dataset.Generate(dataset.Config{Seed: 1})
	for i := 0; i < b.N; i++ {
		ens := ml.NewTop3(1)
		if err := ens.Train(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictFinding(b *testing.B) {
	d := dataset.Generate(dataset.Config{Seed: 1})
	ens := ml.NewTop3(1)
	if err := ens.Train(d); err != nil {
		b.Fatal(err)
	}
	features := d.Instances[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ens.Predict(features)
	}
}

func BenchmarkWeaponGeneration(b *testing.B) {
	specs := weapon.BuiltinSpecs()
	for i := 0; i < b.N; i++ {
		for _, spec := range specs {
			if _, err := weapon.Generate(spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md section 5)
// ---------------------------------------------------------------------------

// BenchmarkAblationAttributeGranularity compares prediction quality with the
// original 16-attribute map vs the new 61-attribute map on the same
// underlying symptom distribution — the paper's central data-mining change.
func BenchmarkAblationAttributeGranularity(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		// The same drawn population rendered under both attribute layouts.
		fine, coarse := dataset.GeneratePairedViews(experiments.DefaultSeed, 256)
		rows := ""
		for _, cfg := range []struct {
			name string
			d    *ml.Dataset
		}{{"61 attributes (new)", fine}, {"16 attributes (original)", coarse}} {
			cm, err := ml.CrossValidate(func() ml.Classifier { return &ml.SVM{Seed: 1} }, cfg.d, 10, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := cm.Compute()
			rows += fmt.Sprintf("  %-26s acc=%.1f%% tpp=%.1f%% pfp=%.1f%%\n",
				cfg.name, m.ACC*100, m.TPP*100, m.PFP*100)
		}
		out = "Ablation: attribute granularity (SVM, 10-fold CV, 256 instances)\n" + rows
	}
	printArtifact(b, out)
}

// BenchmarkAblationEnsembleVote compares the top-3 majority vote against its
// individual members.
func BenchmarkAblationEnsembleVote(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		d := dataset.Generate(dataset.Config{Seed: experiments.DefaultSeed})
		rows := ""
		for _, cfg := range []struct {
			name string
			mk   func() ml.Classifier
		}{
			{"SVM alone", func() ml.Classifier { return &ml.SVM{Seed: 1} }},
			{"LR alone", func() ml.Classifier { return &ml.LogisticRegression{} }},
			{"RF alone", func() ml.Classifier { return &ml.RandomForest{Seed: 1} }},
			{"top-3 majority", func() ml.Classifier { return ml.NewTop3(1) }},
		} {
			cm, err := ml.CrossValidate(cfg.mk, d, 10, 1)
			if err != nil {
				b.Fatal(err)
			}
			m := cm.Compute()
			rows += fmt.Sprintf("  %-16s acc=%.1f%% tpp=%.1f%% pfp=%.1f%%\n",
				cfg.name, m.ACC*100, m.TPP*100, m.PFP*100)
		}
		out = "Ablation: ensemble vote vs individual classifiers (10-fold CV)\n" + rows
	}
	printArtifact(b, out)
}

// BenchmarkAblationInterprocedural measures what cross-function taint
// tracking contributes on flows mediated by user functions: sinks inside
// helpers, taint returned from getters, and sanitizing wrappers.
func BenchmarkAblationInterprocedural(b *testing.B) {
	const src = `<?php
function get_id() { return $_GET['id']; }
function run_query($sql) { return mysql_query($sql); }
function clean_str($v) { return mysql_real_escape_string($v); }

run_query("SELECT a FROM t WHERE id=" . get_id());
mysql_query("SELECT b FROM t WHERE x='" . clean_str($_GET['x']) . "'");
mysql_query("SELECT c FROM t WHERE y=" . $_GET['y']);`
	f, errs := parser.Parse("inter.php", src)
	if len(errs) > 0 {
		b.Fatal(errs)
	}
	cls := vuln.MustGet(vuln.SQLI)
	var out string
	for i := 0; i < b.N; i++ {
		full := len(taint.New(taint.Config{Class: cls}).File(f))
		flat := len(taint.New(taint.Config{Class: cls, DisableInlining: true}).File(f))
		out = fmt.Sprintf("Ablation: interprocedural taint (SQLI micro-corpus)\n"+
			"  with inlining:    %d candidates (helper sink found, sanitizer wrapper trusted)\n"+
			"  without inlining: %d candidates (helper flows invisible)\n", full, flat)
	}
	printArtifact(b, out)
}

// BenchmarkAblationDynamicSymptoms measures the wpsqli weapon's dynamic
// symptoms: the same plugin corpus scored with and without them.
func BenchmarkAblationDynamicSymptoms(b *testing.B) {
	specs := weapon.BuiltinSpecs()
	var withDyn, withoutDyn weapon.Spec
	for _, s := range specs {
		if s.Name == "wpsqli" {
			withDyn = s
			withoutDyn = s
			withoutDyn.Dynamics = nil
		}
	}
	src := `<?php
$cat = $_GET['cat'];
if (absint($cat) == 0) { exit; }
$wpdb->get_var("SELECT COUNT(*) FROM wp_items WHERE cat=" . $cat);`
	var out string
	for i := 0; i < b.N; i++ {
		results := ""
		for _, cfg := range []struct {
			name string
			spec weapon.Spec
		}{{"with dynamic symptoms", withDyn}, {"without", withoutDyn}} {
			w, err := weapon.Generate(cfg.spec)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := core.New(core.Options{
				Mode: core.ModeWAPe, Classes: []vuln.ClassID{},
				Weapons: []*weapon.Weapon{w}, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := eng.Train(); err != nil {
				b.Fatal(err)
			}
			rep, err := eng.Analyze(core.LoadMap("p", map[string]string{"p.php": src}))
			if err != nil {
				b.Fatal(err)
			}
			fp := len(rep.FalsePositives())
			results += fmt.Sprintf("  %-24s predicted FP: %d of %d findings\n",
				cfg.name, fp, len(rep.Findings))
		}
		out = "Ablation: wpsqli dynamic symptoms on an absint-guarded flow\n" + results
	}
	printArtifact(b, out)
}

// BenchmarkMicroSuiteAllClasses runs the all-classes micro corpus: one app
// per vulnerability group, including the classes the paper's corpus never
// triggered (OSCI, PHPCI, XPathI, NoSQLI).
func BenchmarkMicroSuiteAllClasses(b *testing.B) {
	eng, err := core.New(core.Options{Mode: core.ModeWAPe, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.Train(); err != nil {
		b.Fatal(err)
	}
	apps := corpus.MicroSuite(1, 3)
	projs := make([]*core.Project, len(apps))
	for i, app := range apps {
		projs[i] = core.LoadMap(app.Name, app.Files)
	}
	b.ResetTimer()
	var out string
	for i := 0; i < b.N; i++ {
		total := 0
		for _, proj := range projs {
			rep, err := eng.Analyze(proj)
			if err != nil {
				b.Fatal(err)
			}
			total += len(rep.Vulnerabilities())
		}
		out = fmt.Sprintf("Micro suite: %d apps (one per class group), %d vulnerabilities detected\n", len(projs), total)
	}
	printArtifact(b, out)
}

// BenchmarkAblationFPPredictor quantifies what the data-mining stage buys:
// the precision of the reported vulnerabilities with and without the false
// positive predictor, on the full web-application suite.
func BenchmarkAblationFPPredictor(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunWebApps(core.ModeWAPe, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		real := res.TotalVulns                                   // 413
		fpPredicted := res.TotalFPP                              // discarded by the predictor
		fpResidual := res.TotalFP                                // reported but wrong
		withoutPredictor := real + fpPredicted + fpResidual      // everything the analyzer flags
		precWithout := float64(real) / float64(withoutPredictor) // taint analysis alone
		precWith := float64(real) / float64(real+fpResidual)
		out = fmt.Sprintf("Ablation: value of the false positive predictor (54-app suite)\n"+
			"  taint analysis alone:  %d reports, %.1f%% precision\n"+
			"  with top-3 predictor:  %d reports, %.1f%% precision (%d candidates auto-discarded)\n",
			withoutPredictor, precWithout*100,
			real+fpResidual, precWith*100, fpPredicted)
	}
	printArtifact(b, out)
}

// BenchmarkClassifierSelection reproduces the Section III-B1 re-evaluation
// that picked the new top-3 ensemble: seven candidate models cross-validated
// and ranked.
func BenchmarkClassifierSelection(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunClassifierSelection(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.RenderSelection(r)
	}
	printArtifact(b, out)
}

// BenchmarkCodeDrivenDataset reproduces the paper's training-set
// construction pipeline: run the analyzer over applications, label
// candidates, eliminate noise — and compares against the generative set.
func BenchmarkCodeDrivenDataset(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		c, err := experiments.RunCodeDrivenComparison(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.RenderCodeDrivenComparison(c)
	}
	printArtifact(b, out)
}

// BenchmarkSymptomImportance explains the predictor globally: symptoms
// ranked by learned logistic-regression weight.
func BenchmarkSymptomImportance(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		imp, err := experiments.RunSymptomImportance(experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		out = experiments.RenderSymptomImportance(imp, 15)
	}
	printArtifact(b, out)
}

// BenchmarkSymptomExtraction isolates the false positive predictor's
// feature-collection stage.
func BenchmarkSymptomExtraction(b *testing.B) {
	src := `<?php
$id = $_GET['id'];
if (!isset($_GET['id']) || !is_numeric($id)) { exit; }
$id = trim(substr($id, 0, 10));
mysql_query("SELECT COUNT(*) FROM users WHERE id=" . $id);`
	f, errs := parser.Parse("b.php", src)
	if len(errs) > 0 {
		b.Fatal(errs)
	}
	cands := taint.New(taint.Config{Class: vuln.MustGet(vuln.SQLI)}).File(f)
	if len(cands) != 1 {
		b.Fatalf("candidates = %d", len(cands))
	}
	ex := symptom.NewExtractor(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.Extract(cands[0], f)
	}
}
