package main

import "testing"

func TestSingleTables(t *testing.T) {
	// Static tables are cheap; run them through the CLI path.
	for _, n := range []string{"1", "4"} {
		if err := run([]string{"-only", n}); err != nil {
			t.Fatalf("table %s: %v", n, err)
		}
	}
}

func TestTable2Through3(t *testing.T) {
	if testing.Short() {
		t.Skip("classifier CV run")
	}
	if err := run([]string{"-only", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable7Run(t *testing.T) {
	if testing.Short() {
		t.Skip("full plugin suite")
	}
	if err := run([]string{"-only", "7"}); err != nil {
		t.Fatal(err)
	}
}
