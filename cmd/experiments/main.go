// Command experiments regenerates every table and figure of the paper's
// evaluation section in one run: Tables I–VII and Figures 4 and 5.
//
// Usage:
//
//	experiments            # everything
//	experiments -only 6    # a single table (1-7) or figure (4-5 with -fig)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		seed = fs.Int64("seed", experiments.DefaultSeed, "corpus and training seed")
		only = fs.Int("only", 0, "run a single table (1-7); 0 = all")
		figs = fs.Bool("figs", true, "render figures 4 and 5")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := func(n int) bool { return *only == 0 || *only == n }

	if want(1) {
		fmt.Println(experiments.Table1())
	}
	if want(2) || want(3) {
		r, err := experiments.RunTable2And3(*seed)
		if err != nil {
			return err
		}
		if want(2) {
			fmt.Println(experiments.RenderTable2(r))
		}
		if want(3) {
			fmt.Println(experiments.RenderTable3(r))
		}
	}
	if want(4) {
		fmt.Println(experiments.Table4())
	}

	var webOld, webNew *experiments.WebAppsResult
	var err error
	if want(5) || want(6) || (*figs && *only == 0) {
		fmt.Println("running the 54-package web application suite (both tool versions)...")
		webOld, err = experiments.RunWebApps(core.ModeOriginal, *seed)
		if err != nil {
			return err
		}
		webNew, err = experiments.RunWebApps(core.ModeWAPe, *seed)
		if err != nil {
			return err
		}
	}
	if want(5) && webNew != nil {
		fmt.Println(experiments.RenderTable5(webNew))
	}
	if want(6) && webNew != nil {
		fmt.Println(experiments.RenderTable6(webOld, webNew))
	}

	var plugins *experiments.PluginsResult
	if want(7) || (*figs && *only == 0) {
		fmt.Println("running the 115-plugin WordPress suite (WAPe + weapons)...")
		plugins, err = experiments.RunWordPress(*seed)
		if err != nil {
			return err
		}
	}
	if want(7) && plugins != nil {
		fmt.Println(experiments.RenderTable7(plugins))
	}

	if *figs && *only == 0 && plugins != nil && webNew != nil {
		fmt.Println(experiments.RenderFig4(experiments.RunFig4(plugins)))
		fmt.Println(experiments.RenderFig5(webNew, plugins))
	}

	if *only == 0 {
		// Supplementary artifacts: classifier selection, symptom importance
		// and the training-set construction pipeline.
		sel, err := experiments.RunClassifierSelection(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSelection(sel))
		imp, err := experiments.RunSymptomImportance(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSymptomImportance(imp, 15))
		cd, err := experiments.RunCodeDrivenComparison(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderCodeDrivenComparison(cd))
	}
	return nil
}
