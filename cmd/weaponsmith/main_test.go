package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltinBundle(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-builtin", "nosqli", "-out", out}); err != nil {
		t.Fatal(err)
	}
	spec, err := os.ReadFile(filepath.Join(out, "nosqli", "nosqli.weapon"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"name nosqli", "sink find method", "san mysql_real_escape_string", "fix-template php_san"} {
		if !strings.Contains(string(spec), want) {
			t.Errorf("spec missing %q:\n%s", want, spec)
		}
	}
	fix, err := os.ReadFile(filepath.Join(out, "nosqli", "san_nosqli.php"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fix), "function san_nosqli($v)") {
		t.Errorf("fix file:\n%s", fix)
	}
}

func TestSpecRoundtripThroughBundle(t *testing.T) {
	out := t.TempDir()
	// Emit a built-in, then regenerate from the emitted spec file.
	if err := run([]string{"-builtin", "wpsqli", "-out", out}); err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(out, "wpsqli", "wpsqli.weapon")
	out2 := t.TempDir()
	if err := run([]string{"-spec", specPath, "-out", out2}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(out2, "wpsqli", "san_wpsqli.php")); err != nil {
		t.Error("regenerated bundle incomplete")
	}
}

func TestCheckMode(t *testing.T) {
	specPath := filepath.Join(t.TempDir(), "x.weapon")
	if err := os.WriteFile(specPath, []byte("name x\nsink f\nfix-template user_val\nfix-chars '\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", specPath}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("want error without -spec/-builtin")
	}
	if err := run([]string{"-builtin", "nope"}); err == nil {
		t.Error("want error for unknown builtin")
	}
	if err := run([]string{"-spec", "/no/such.weapon"}); err == nil {
		t.Error("want error for missing spec")
	}
	bad := filepath.Join(t.TempDir(), "bad.weapon")
	os.WriteFile(bad, []byte("name broken\n"), 0o644)
	if err := run([]string{"-check", bad}); err == nil {
		t.Error("want validation error for sink-less spec")
	}
}
