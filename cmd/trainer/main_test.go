package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTrainerDefault(t *testing.T) {
	if err := run([]string{}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainerOriginal(t *testing.T) {
	if err := run([]string{"-original"}); err != nil {
		t.Fatal(err)
	}
}

func TestTrainerARFFExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wap.arff")
	if err := run([]string{"-arff", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"@relation", "@attribute is_numeric {0,1}", "@attribute class {FP,RV}", "@data"} {
		if !strings.Contains(s, want) {
			t.Errorf("ARFF missing %q", want)
		}
	}
	if strings.Count(s, "\n") < 256 {
		t.Errorf("ARFF too short: %d lines", strings.Count(s, "\n"))
	}
}

func TestTrainerBadFolds(t *testing.T) {
	if err := run([]string{"-folds", "1"}); err == nil {
		t.Error("want error for 1 fold")
	}
}
