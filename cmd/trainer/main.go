// Command trainer builds the false-positive-prediction data sets, trains
// the classifiers and prints the paper's Tables II and III. It can also
// export the data sets in ARFF format for inspection.
//
// Usage:
//
//	trainer                 # evaluate the top-3 classifiers (Tables II/III)
//	trainer -arff wap.arff  # additionally export the 256-instance set
//	trainer -original       # evaluate on the WAP v2.1 data set instead
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ml"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "trainer:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("trainer", flag.ContinueOnError)
	var (
		seed       = fs.Int64("seed", experiments.DefaultSeed, "generation and training seed")
		arffPath   = fs.String("arff", "", "export the training set to this ARFF file")
		original   = fs.Bool("original", false, "use the WAP v2.1 data set (76 instances, 16 attributes)")
		folds      = fs.Int("folds", 10, "cross-validation folds")
		selectAll  = fs.Bool("select", false, "re-evaluate every candidate classifier and rank the top 3")
		importance = fs.Bool("importance", false, "rank symptoms by learned weight")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *folds < 2 {
		return fmt.Errorf("cross-validation needs at least 2 folds, got %d", *folds)
	}

	d := dataset.Generate(dataset.Config{Seed: *seed, Original: *original})
	pos, neg := d.CountLabels()
	fmt.Printf("data set: %d instances (%d FP / %d RV), %d attributes (+class)\n\n",
		d.Len(), pos, neg, d.NumFeatures())

	if *arffPath != "" {
		f, err := os.Create(*arffPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dataset.WriteARFF(f, "wap-false-positives", d); err != nil {
			return err
		}
		fmt.Printf("exported to %s\n\n", *arffPath)
	}

	if *original {
		// Evaluate the original ensemble members.
		for _, mk := range []func() ml.Classifier{
			func() ml.Classifier { return &ml.LogisticRegression{} },
			func() ml.Classifier { return ml.NewRandomTree(d.NumFeatures(), *seed) },
			func() ml.Classifier { return &ml.SVM{Seed: *seed} },
		} {
			cm, err := ml.CrossValidate(mk, d, *folds, *seed)
			if err != nil {
				return err
			}
			m := cm.Compute()
			fmt.Printf("%-20s acc=%.1f%% tpp=%.1f%% pfp=%.1f%% %v\n",
				mk().Name(), m.ACC*100, m.TPP*100, m.PFP*100, &cm)
		}
		return nil
	}

	if *selectAll {
		sel, err := experiments.RunClassifierSelection(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSelection(sel))
		return nil
	}
	if *importance {
		imp, err := experiments.RunSymptomImportance(*seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSymptomImportance(imp, 20))
		return nil
	}

	r, err := experiments.RunTable2And3(*seed)
	if err != nil {
		return err
	}
	fmt.Println(experiments.RenderTable2(r))
	fmt.Println(experiments.RenderTable3(r))
	return nil
}
