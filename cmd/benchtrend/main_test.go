package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkAnalyzeApp-8                    	     142	   8441385 ns/op	  203144 B/op	    3021 allocs/op
BenchmarkAnalyzeAppIncrementalCold-8     	       9	 125000298 ns/op
BenchmarkAnalyzeAppIncremental-8         	     163	   7250100 ns/op
PASS
ok  	repro	3.843s
`

func TestParseBenchEchoesAndExtracts(t *testing.T) {
	var echo bytes.Buffer
	got, err := parseBench(strings.NewReader(benchOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != benchOutput {
		t.Errorf("echo mangled the stream:\n%s", echo.String())
	}
	want := map[string]float64{
		"BenchmarkAnalyzeApp":                8441385,
		"BenchmarkAnalyzeAppIncrementalCold": 125000298,
		"BenchmarkAnalyzeAppIncremental":     7250100,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

func TestAppendAndCompare(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	now := func() time.Time { return time.Unix(0, 0) }

	runAppend := func(out string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-file", file}, strings.NewReader(out), &stdout, &stderr, now); code != 0 {
			t.Fatalf("append exited %d: %s", code, stderr.String())
		}
	}
	runAppend(benchOutput)
	// Trajectory appends; a second run must not overwrite the first entry.
	faster := strings.Replace(benchOutput, "7250100 ns/op", "7000000 ns/op", 1)
	runAppend(faster)

	entries, err := readTrajectory(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory has %d entries, want 2", len(entries))
	}

	var stdout bytes.Buffer
	code := run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now)
	if code != 0 {
		t.Fatalf("compare of an improvement exited %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "incremental speedup") {
		t.Errorf("compare output missing speedup line:\n%s", stdout.String())
	}

	// A >10%% slowdown must be flagged and fail the command.
	slower := strings.Replace(benchOutput, "8441385 ns/op", "18441385 ns/op", 1)
	runAppend(slower)
	stdout.Reset()
	code = run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now)
	if code != 1 {
		t.Fatalf("compare of a regression exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("compare output missing REGRESSION marker:\n%s", stdout.String())
	}
}

func TestReadTrajectorySkipsForeignLines(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	legacy := `{"Time":"2026-08-05T04:06:22Z","Action":"start","Package":"repro"}
not json at all
{"date":"2026-08-05T00:00:00Z","go":"go1.24.0","benchmarks":{"BenchmarkAnalyzeApp":8441385}}
`
	if err := os.WriteFile(file, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := readTrajectory(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("trajectory has %d entries, want 1 (legacy lines skipped)", len(entries))
	}
	if entries[0].Benchmarks["BenchmarkAnalyzeApp"] != 8441385 {
		t.Errorf("surviving entry mangled: %+v", entries[0])
	}
}
