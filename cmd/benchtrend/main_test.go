package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkAnalyzeApp-8                    	     142	   8441385 ns/op	  203144 B/op	    3021 allocs/op
BenchmarkAnalyzeAppIncrementalCold-8     	       9	 125000298 ns/op
BenchmarkAnalyzeAppIncremental-8         	     163	   7250100 ns/op
PASS
ok  	repro	3.843s
`

func TestParseBenchEchoesAndExtracts(t *testing.T) {
	var echo bytes.Buffer
	got, err := parseBench(strings.NewReader(benchOutput), &echo)
	if err != nil {
		t.Fatal(err)
	}
	if echo.String() != benchOutput {
		t.Errorf("echo mangled the stream:\n%s", echo.String())
	}
	want := map[string]float64{
		"BenchmarkAnalyzeApp":                8441385,
		"BenchmarkAnalyzeAppIncrementalCold": 125000298,
		"BenchmarkAnalyzeAppIncremental":     7250100,
	}
	if len(got.ns) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got.ns), len(want), got.ns)
	}
	for name, ns := range want {
		if got.ns[name] != ns {
			t.Errorf("%s = %v, want %v", name, got.ns[name], ns)
		}
	}
	// Memory dimensions: only BenchmarkAnalyzeApp reported them.
	if got.bytes["BenchmarkAnalyzeApp"] != 203144 {
		t.Errorf("B/op = %v, want 203144", got.bytes["BenchmarkAnalyzeApp"])
	}
	if got.allocs["BenchmarkAnalyzeApp"] != 3021 {
		t.Errorf("allocs/op = %v, want 3021", got.allocs["BenchmarkAnalyzeApp"])
	}
	if len(got.bytes) != 1 || len(got.allocs) != 1 {
		t.Errorf("memory dimensions parsed for %d/%d benchmarks, want 1/1", len(got.bytes), len(got.allocs))
	}
}

// TestParseBenchCustomMetrics pins the column extraction against lines where
// MB/s or custom b.ReportMetric units sit between ns/op and the -benchmem
// columns.
func TestParseBenchCustomMetrics(t *testing.T) {
	const out = `BenchmarkLargeAppThroughput-8   5   200000 ns/op   55.2 MB/s   12000 lines   8832 B/op   77 allocs/op
`
	got, err := parseBench(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got.ns["BenchmarkLargeAppThroughput"] != 200000 {
		t.Errorf("ns/op = %v, want 200000", got.ns["BenchmarkLargeAppThroughput"])
	}
	if got.bytes["BenchmarkLargeAppThroughput"] != 8832 {
		t.Errorf("B/op = %v, want 8832", got.bytes["BenchmarkLargeAppThroughput"])
	}
	if got.allocs["BenchmarkLargeAppThroughput"] != 77 {
		t.Errorf("allocs/op = %v, want 77", got.allocs["BenchmarkLargeAppThroughput"])
	}
}

// TestParseBenchKeepsMinimumAcrossCount pins the -count=N behavior: each
// benchmark's minimum repetition is recorded, in every dimension, so the
// trajectory gates on the least scheduler-disturbed measurement.
func TestParseBenchKeepsMinimumAcrossCount(t *testing.T) {
	const out = `BenchmarkAnalyzeApp-8   100   9000000 ns/op   210000 B/op   3100 allocs/op
BenchmarkAnalyzeApp-8   100   8441385 ns/op   203144 B/op   3021 allocs/op
BenchmarkAnalyzeApp-8   100   9800000 ns/op   205000 B/op   3050 allocs/op
`
	got, err := parseBench(strings.NewReader(out), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got.ns["BenchmarkAnalyzeApp"] != 8441385 {
		t.Errorf("ns/op = %v, want the minimum 8441385", got.ns["BenchmarkAnalyzeApp"])
	}
	if got.bytes["BenchmarkAnalyzeApp"] != 203144 {
		t.Errorf("B/op = %v, want the minimum 203144", got.bytes["BenchmarkAnalyzeApp"])
	}
	if got.allocs["BenchmarkAnalyzeApp"] != 3021 {
		t.Errorf("allocs/op = %v, want the minimum 3021", got.allocs["BenchmarkAnalyzeApp"])
	}
}

// TestCompareFusedGate proves the fused-scheduling acceptance gate: a run
// where the fused uncached scan holds less than 2x over the per-class
// baseline fails -compare even with no per-benchmark regression.
func TestCompareFusedGate(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	now := func() time.Time { return time.Unix(0, 0) }
	appendRun := func(out string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-file", file}, strings.NewReader(out), &stdout, &stderr, now); code != 0 {
			t.Fatalf("append exited %d: %s", code, stderr.String())
		}
	}
	const holding = `BenchmarkAnalyzeAppUncachedFused-8     100   2000000 ns/op
BenchmarkAnalyzeAppUncachedUnfused-8   100   5000000 ns/op
`
	appendRun(holding)
	appendRun(holding)
	var stdout bytes.Buffer
	if code := run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now); code != 0 {
		t.Fatalf("compare with the gate holding exited %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "fused vs per-class uncached: 2.50x") {
		t.Errorf("compare output missing fused ratio line:\n%s", stdout.String())
	}

	// The fused win erodes below 2x: the gate must fail even though the
	// fused benchmark itself got no more than 10% slower than last run.
	eroded := strings.Replace(holding, "2000000 ns/op", "2600000 ns/op", 1)
	appendRun(eroded)
	appendRun(eroded)
	stdout.Reset()
	if code := run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now); code != 1 {
		t.Fatalf("compare with the fused gate broken exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "gate: 2x") {
		t.Errorf("compare output missing fused gate marker:\n%s", stdout.String())
	}
}

// TestCompareFlagsAllocRegression proves the memory dimensions gate: a run
// whose allocs/op grew >threshold fails -compare even when ns/op improved.
func TestCompareFlagsAllocRegression(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	now := func() time.Time { return time.Unix(0, 0) }
	appendRun := func(out string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-file", file}, strings.NewReader(out), &stdout, &stderr, now); code != 0 {
			t.Fatalf("append exited %d: %s", code, stderr.String())
		}
	}
	appendRun(benchOutput)
	worse := strings.Replace(benchOutput, "8441385 ns/op	  203144 B/op	    3021 allocs/op",
		"8000000 ns/op	  203144 B/op	    9021 allocs/op", 1)
	appendRun(worse)
	var stdout bytes.Buffer
	code := run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now)
	if code != 1 {
		t.Fatalf("compare of an alloc regression exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "allocs/op") || !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("compare output missing alloc regression marker:\n%s", stdout.String())
	}
}

func TestAppendAndCompare(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	now := func() time.Time { return time.Unix(0, 0) }

	runAppend := func(out string) {
		t.Helper()
		var stdout, stderr bytes.Buffer
		if code := run([]string{"-file", file}, strings.NewReader(out), &stdout, &stderr, now); code != 0 {
			t.Fatalf("append exited %d: %s", code, stderr.String())
		}
	}
	runAppend(benchOutput)
	// Trajectory appends; a second run must not overwrite the first entry.
	faster := strings.Replace(benchOutput, "7250100 ns/op", "7000000 ns/op", 1)
	runAppend(faster)

	entries, err := readTrajectory(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("trajectory has %d entries, want 2", len(entries))
	}

	var stdout bytes.Buffer
	code := run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now)
	if code != 0 {
		t.Fatalf("compare of an improvement exited %d:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "incremental speedup") {
		t.Errorf("compare output missing speedup line:\n%s", stdout.String())
	}

	// A >10%% slowdown must be flagged and fail the command.
	slower := strings.Replace(benchOutput, "8441385 ns/op", "18441385 ns/op", 1)
	runAppend(slower)
	stdout.Reset()
	code = run([]string{"-file", file, "-compare"}, strings.NewReader(""), &stdout, os.Stderr, now)
	if code != 1 {
		t.Fatalf("compare of a regression exited %d, want 1:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "REGRESSION") {
		t.Errorf("compare output missing REGRESSION marker:\n%s", stdout.String())
	}
}

func TestReadTrajectorySkipsForeignLines(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trend.json")
	legacy := `{"Time":"2026-08-05T04:06:22Z","Action":"start","Package":"repro"}
not json at all
{"date":"2026-08-05T00:00:00Z","go":"go1.24.0","benchmarks":{"BenchmarkAnalyzeApp":8441385}}
`
	if err := os.WriteFile(file, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	entries, err := readTrajectory(file)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("trajectory has %d entries, want 1 (legacy lines skipped)", len(entries))
	}
	if entries[0].Benchmarks["BenchmarkAnalyzeApp"] != 8441385 {
		t.Errorf("surviving entry mangled: %+v", entries[0])
	}
}
