// Command benchtrend maintains the benchmark trajectory file
// (BENCH_analyze.json): a JSON-lines log with one entry per benchmark run,
// appended — never overwritten — so the performance history of the analyzer
// survives across runs and regressions are visible as a trend, not just a
// pair of numbers.
//
// Append mode (the default) reads `go test -bench` output on stdin, echoes
// it through unchanged, and appends one entry recording the ns/op — and, when
// the run used -benchmem, the B/op and allocs/op — of every benchmark in the
// run. With -count=N each benchmark's minimum across repetitions is recorded,
// so the gate compares the least scheduler-disturbed measurement instead of
// run-to-run jitter:
//
//	go test -run '^$' -bench . -benchmem -count=3 . | benchtrend -file BENCH_analyze.json
//
// Compare mode diffs the last two entries and exits non-zero when any
// benchmark got slower — or allocation-heavier — by more than -threshold
// (default 10%):
//
//	benchtrend -compare -file BENCH_analyze.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"time"
)

// entry is one line of the trajectory file.
type entry struct {
	// Date is RFC 3339 UTC.
	Date string `json:"date"`
	Go   string `json:"go"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// BytesPerOp / AllocsPerOp record the -benchmem memory dimensions for
	// benchmarks that reported them. Absent on entries predating the schema.
	BytesPerOp  map[string]float64 `json:"bytes_op,omitempty"`
	AllocsPerOp map[string]float64 `json:"allocs_op,omitempty"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkAnalyzeApp-8   	     142	   8441385 ns/op	 2031 B/op	 12 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// memLine extracts the -benchmem columns wherever they appear in the line
// (custom metrics such as MB/s or lines may sit between ns/op and B/op).
var (
	bytesCol  = regexp.MustCompile(`\s([\d.]+) B/op`)
	allocsCol = regexp.MustCompile(`\s([\d.]+) allocs/op`)
)

// benchRun holds every dimension parsed from one bench invocation.
type benchRun struct {
	ns     map[string]float64
	bytes  map[string]float64
	allocs map[string]float64
}

// parseBench scans bench output from r, echoing every line to echo, and
// returns the ns/op (plus B/op and allocs/op when present) per benchmark
// name. A benchmark that ran more than once (-count=N) keeps its minimum:
// the fastest repetition is the least scheduler-disturbed measurement of the
// code's actual cost, so gating on it compares signal, not jitter.
func parseBench(r io.Reader, echo io.Writer) (benchRun, error) {
	out := benchRun{
		ns:     make(map[string]float64),
		bytes:  make(map[string]float64),
		allocs: make(map[string]float64),
	}
	keepMin := func(m map[string]float64, name string, v float64) {
		if old, ok := m[name]; !ok || v < old {
			m[name] = v
		}
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		var ns float64
		if _, err := fmt.Sscanf(m[2], "%g", &ns); err != nil {
			continue
		}
		keepMin(out.ns, name, ns)
		if bm := bytesCol.FindStringSubmatch(line); bm != nil {
			var v float64
			if _, err := fmt.Sscanf(bm[1], "%g", &v); err == nil {
				keepMin(out.bytes, name, v)
			}
		}
		if am := allocsCol.FindStringSubmatch(line); am != nil {
			var v float64
			if _, err := fmt.Sscanf(am[1], "%g", &v); err == nil {
				keepMin(out.allocs, name, v)
			}
		}
	}
	return out, sc.Err()
}

// appendEntry appends e as one JSON line to path.
func appendEntry(path string, e entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// readTrajectory parses every valid entry line of path, silently skipping
// lines in other formats (the file predates the trajectory schema in old
// checkouts).
func readTrajectory(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []entry
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || len(e.Benchmarks) == 0 {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// compareDim diffs one dimension (ns/op, B/op or allocs/op) of the last two
// entries, printing a delta line per benchmark and reporting whether any
// regressed beyond threshold (fractional, e.g. 0.10 = 10% worse). Benchmarks
// absent from the previous entry — new benchmarks, or entries predating the
// memory-dimension schema — are reported but never count as regressions.
func compareDim(unit string, prev, last map[string]float64, threshold float64, w io.Writer) (regressed bool) {
	names := make([]string, 0, len(last))
	for name := range last {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := last[name]
		old, ok := prev[name]
		if !ok {
			fmt.Fprintf(w, "  %-44s %12.0f %s  (new)\n", name, now, unit)
			continue
		}
		delta := 0.0
		if old > 0 {
			delta = (now - old) / old
		}
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "  %-44s %12.0f %s  %+6.1f%%%s\n", name, now, unit, delta*100, mark)
	}
	return regressed
}

// compare prints the per-benchmark delta between the last two trajectory
// entries — time and, when recorded, memory dimensions — and reports whether
// any benchmark regressed beyond threshold.
func compare(entries []entry, threshold float64, w io.Writer) (regressed bool) {
	if len(entries) < 2 {
		fmt.Fprintf(w, "benchtrend: need at least two trajectory entries to compare (have %d)\n", len(entries))
		return false
	}
	prev, last := entries[len(entries)-2], entries[len(entries)-1]
	fmt.Fprintf(w, "comparing %s -> %s\n", prev.Date, last.Date)
	regressed = compareDim("ns/op", prev.Benchmarks, last.Benchmarks, threshold, w)
	if len(last.BytesPerOp) > 0 {
		fmt.Fprintln(w, "memory (B/op):")
		regressed = compareDim("B/op", prev.BytesPerOp, last.BytesPerOp, threshold, w) || regressed
	}
	if len(last.AllocsPerOp) > 0 {
		fmt.Fprintln(w, "allocations (allocs/op):")
		regressed = compareDim("allocs/op", prev.AllocsPerOp, last.AllocsPerOp, threshold, w) || regressed
	}
	// The incremental-scan acceptance ratio, when both sides are present.
	cold, okc := last.Benchmarks["BenchmarkAnalyzeAppIncrementalCold"]
	warm, okw := last.Benchmarks["BenchmarkAnalyzeAppIncremental"]
	if okc && okw && warm > 0 {
		fmt.Fprintf(w, "incremental speedup (cold/warm): %.1fx\n", cold/warm)
	}
	// The IR engine's acceptance gate: a multi-class scan on the IR engine
	// (BenchmarkAnalyzeApp, the default path) must not be slower than the
	// legacy AST walker (BenchmarkAnalyzeAppLegacy) beyond the regression
	// threshold — the lowering is paid once per file, so sharing it across
	// every weapon-class task has to win, not lose.
	irNs, oki := last.Benchmarks["BenchmarkAnalyzeApp"]
	legNs, okl := last.Benchmarks["BenchmarkAnalyzeAppLegacy"]
	if oki && okl && irNs > 0 {
		fmt.Fprintf(w, "ir engine vs legacy walker: %.2fx\n", legNs/irNs)
		if irNs > legNs*(1+threshold) {
			fmt.Fprintf(w, "  REGRESSION: IR-engine scan is %.1f%% slower than the legacy walker\n",
				(irNs/legNs-1)*100)
			regressed = true
		}
	}
	// Fused scheduling's acceptance gate: the fused uncached scan must hold
	// at least a 2x win over per-class execution of the identical workload —
	// that is the tentpole's reason to exist, so losing it is a regression,
	// not a drift.
	fusedNs, okf := last.Benchmarks["BenchmarkAnalyzeAppUncachedFused"]
	unfNs, oku := last.Benchmarks["BenchmarkAnalyzeAppUncachedUnfused"]
	if okf && oku && fusedNs > 0 {
		fmt.Fprintf(w, "fused vs per-class uncached: %.2fx\n", unfNs/fusedNs)
		if unfNs < 2*fusedNs {
			fmt.Fprintf(w, "  REGRESSION: fused uncached scan is only %.2fx the per-class baseline (gate: 2x)\n",
				unfNs/fusedNs)
			regressed = true
		}
	}
	return regressed
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer, now func() time.Time) int {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("file", "BENCH_analyze.json", "trajectory file (JSON lines)")
	doCompare := fs.Bool("compare", false, "compare the last two trajectory entries instead of appending")
	threshold := fs.Float64("threshold", 0.10, "fractional slowdown that counts as a regression in -compare")
	date := fs.String("date", "", "entry timestamp override (RFC 3339); defaults to now")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doCompare {
		entries, err := readTrajectory(*file)
		if err != nil {
			fmt.Fprintf(stderr, "benchtrend: %v\n", err)
			return 2
		}
		if compare(entries, *threshold, stdout) {
			return 1
		}
		return 0
	}
	res, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "benchtrend: read bench output: %v\n", err)
		return 2
	}
	if len(res.ns) == 0 {
		fmt.Fprintln(stderr, "benchtrend: no benchmark results on stdin; trajectory unchanged")
		return 2
	}
	when := *date
	if when == "" {
		when = now().UTC().Format(time.RFC3339)
	}
	e := entry{Date: when, Go: runtime.Version(), Benchmarks: res.ns}
	if len(res.bytes) > 0 {
		e.BytesPerOp = res.bytes
	}
	if len(res.allocs) > 0 {
		e.AllocsPerOp = res.allocs
	}
	if err := appendEntry(*file, e); err != nil {
		fmt.Fprintf(stderr, "benchtrend: append %s: %v\n", *file, err)
		return 2
	}
	fmt.Fprintf(stderr, "benchtrend: recorded %d benchmarks in %s\n", len(res.ns), *file)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr, time.Now))
}
