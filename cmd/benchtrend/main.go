// Command benchtrend maintains the benchmark trajectory file
// (BENCH_analyze.json): a JSON-lines log with one entry per benchmark run,
// appended — never overwritten — so the performance history of the analyzer
// survives across runs and regressions are visible as a trend, not just a
// pair of numbers.
//
// Append mode (the default) reads `go test -bench` output on stdin, echoes
// it through unchanged, and appends one entry recording the ns/op of every
// benchmark in the run:
//
//	go test -run '^$' -bench . -benchmem . | benchtrend -file BENCH_analyze.json
//
// Compare mode diffs the last two entries and exits non-zero when any
// benchmark slowed down by more than -threshold (default 10%):
//
//	benchtrend -compare -file BENCH_analyze.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"time"
)

// entry is one line of the trajectory file.
type entry struct {
	// Date is RFC 3339 UTC.
	Date string `json:"date"`
	Go   string `json:"go"`
	// Benchmarks maps benchmark name (GOMAXPROCS suffix stripped) to ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// benchLine matches one result line of `go test -bench` output, e.g.
//
//	BenchmarkAnalyzeApp-8   	     142	   8441385 ns/op	 2031 B/op ...
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// parseBench scans bench output from r, echoing every line to echo, and
// returns ns/op per benchmark name. A benchmark that ran more than once
// keeps its last result.
func parseBench(r io.Reader, echo io.Writer) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if m := benchLine.FindStringSubmatch(line); m != nil {
			var ns float64
			if _, err := fmt.Sscanf(m[2], "%g", &ns); err == nil {
				out[m[1]] = ns
			}
		}
	}
	return out, sc.Err()
}

// appendEntry appends e as one JSON line to path.
func appendEntry(path string, e entry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(data, '\n'))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// readTrajectory parses every valid entry line of path, silently skipping
// lines in other formats (the file predates the trajectory schema in old
// checkouts).
func readTrajectory(path string) ([]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []entry
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(line, &e); err != nil || len(e.Benchmarks) == 0 {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// compare prints the per-benchmark delta between the last two trajectory
// entries and reports whether any benchmark regressed beyond threshold
// (fractional, e.g. 0.10 = 10% slower).
func compare(entries []entry, threshold float64, w io.Writer) (regressed bool) {
	if len(entries) < 2 {
		fmt.Fprintf(w, "benchtrend: need at least two trajectory entries to compare (have %d)\n", len(entries))
		return false
	}
	prev, last := entries[len(entries)-2], entries[len(entries)-1]
	fmt.Fprintf(w, "comparing %s -> %s\n", prev.Date, last.Date)
	names := make([]string, 0, len(last.Benchmarks))
	for name := range last.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		now := last.Benchmarks[name]
		old, ok := prev.Benchmarks[name]
		if !ok {
			fmt.Fprintf(w, "  %-44s %12.0f ns/op  (new)\n", name, now)
			continue
		}
		delta := (now - old) / old
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Fprintf(w, "  %-44s %12.0f ns/op  %+6.1f%%%s\n", name, now, delta*100, mark)
	}
	// The incremental-scan acceptance ratio, when both sides are present.
	cold, okc := last.Benchmarks["BenchmarkAnalyzeAppIncrementalCold"]
	warm, okw := last.Benchmarks["BenchmarkAnalyzeAppIncremental"]
	if okc && okw && warm > 0 {
		fmt.Fprintf(w, "incremental speedup (cold/warm): %.1fx\n", cold/warm)
	}
	return regressed
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer, now func() time.Time) int {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("file", "BENCH_analyze.json", "trajectory file (JSON lines)")
	doCompare := fs.Bool("compare", false, "compare the last two trajectory entries instead of appending")
	threshold := fs.Float64("threshold", 0.10, "fractional slowdown that counts as a regression in -compare")
	date := fs.String("date", "", "entry timestamp override (RFC 3339); defaults to now")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *doCompare {
		entries, err := readTrajectory(*file)
		if err != nil {
			fmt.Fprintf(stderr, "benchtrend: %v\n", err)
			return 2
		}
		if compare(entries, *threshold, stdout) {
			return 1
		}
		return 0
	}
	benches, err := parseBench(stdin, stdout)
	if err != nil {
		fmt.Fprintf(stderr, "benchtrend: read bench output: %v\n", err)
		return 2
	}
	if len(benches) == 0 {
		fmt.Fprintln(stderr, "benchtrend: no benchmark results on stdin; trajectory unchanged")
		return 2
	}
	when := *date
	if when == "" {
		when = now().UTC().Format(time.RFC3339)
	}
	e := entry{Date: when, Go: runtime.Version(), Benchmarks: benches}
	if err := appendEntry(*file, e); err != nil {
		fmt.Fprintf(stderr, "benchtrend: append %s: %v\n", *file, err)
		return 2
	}
	fmt.Fprintf(stderr, "benchtrend: recorded %d benchmarks in %s\n", len(benches), *file)
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr, time.Now))
}
