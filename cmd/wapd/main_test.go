package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunRejectsPositionalArgs(t *testing.T) {
	err := run([]string{"some-dir"})
	if err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("err = %v, want usage error", err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// TestBuildEngineWiresRobustnessOptions checks the service engine carries
// the retry/breaker configuration and every built-in weapon class.
func TestBuildEngineWiresRobustnessOptions(t *testing.T) {
	eng, err := buildEngine(engineParams{
		seed: 1, taskTimeout: time.Second,
		retryMax: 3, retryBackoff: time.Millisecond,
		breakerThreshold: 4, breakerCooldown: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Breakers armed: the snapshot map exists (empty until tasks run).
	if snap := eng.BreakerSnapshot(); snap == nil {
		t.Error("breaker threshold did not arm the circuit breakers")
	}
	// The WAPe class set plus built-in weapons.
	if n := len(eng.Classes()); n < 15 {
		t.Errorf("engine has %d classes, want the full WAPe set + weapons", n)
	}
}
