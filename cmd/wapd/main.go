// Command wapd runs WAPe as a long-running HTTP scan service: POST /scan
// submits a job (a server-local directory or an uploaded tree), the
// response is the JSON report with diagnostics and statistics.
//
// Robustness layers:
//
//   - admission control: a bounded queue (-queue-depth) feeding a fixed
//     worker pool (-workers); a saturated queue answers 429 + Retry-After;
//   - per-request deadlines (timeout_ms in the body, capped by
//     -max-timeout) propagate into the engine, so a slow scan returns a
//     partial report instead of hanging the connection;
//   - the engine retry ladder (-retry-max) re-runs transiently faulting
//     (file, class) tasks with shrinking budgets before giving up;
//   - per-class circuit breakers (-breaker-threshold, -breaker-cooldown)
//     trip a persistently faulting class open across jobs;
//   - durable async jobs (-journal): "async": true requests answer 202 with
//     a job ID, are journaled through a write-ahead log, survive a process
//     crash, and resume warm from the result store (-cache-dir) on the next
//     start; GET /jobs/{id} polls status and result;
//   - hot-reloadable weapons (-weapons-dir): POST /weapons runs a .weapon
//     spec through the validation ladder (parse → collision check against
//     bundled class IDs → dry-run on a generated proof app) and swaps it
//     into service without a restart; accepted weapons persist to
//     -weapons-dir and replay at the next start;
//   - pluggable result-store tiers: -cache-serve exposes this replica's
//     store at /cas/ as a shared content-addressed tier; -cache-backend
//     points the store at such a tier instead of local disk, wrapped in a
//     full fault envelope (per-op deadlines, bounded retries, a backend
//     circuit breaker, verify-on-read, bounded write-behind) so a slow,
//     flaky, lying or dead tier degrades scans to cache-less — findings
//     byte-identical — instead of failing or corrupting them;
//   - SIGTERM/SIGINT drains gracefully within -drain-timeout, compacting
//     the journal so clean shutdowns replay nothing; /healthz and /readyz
//     reflect queue saturation, drain state, breaker positions and
//     journal/store self-healing counters.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux for -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/resultstore"
	"repro/internal/resultstore/httpbackend"
	"repro/internal/server"
	"repro/internal/weapon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wapd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wapd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8387", "listen address")
		queueDepth = fs.Int("queue-depth", server.DefaultQueueDepth, "max scan jobs waiting for a worker; beyond it requests get 429")
		workers    = fs.Int("workers", server.DefaultWorkers, "scan jobs analyzed concurrently")
		drainTO    = fs.Duration("drain-timeout", server.DefaultDrainTimeout, "grace for in-flight jobs on SIGTERM before they are cancelled into partial reports")
		defaultTO  = fs.Duration("default-timeout", server.DefaultJobTimeout, "per-job deadline when the request names none")
		maxTO      = fs.Duration("max-timeout", server.DefaultMaxTimeout, "cap on client-requested job deadlines")
		retryMax   = fs.Int("retry-max", 2, "retries for a faulted (file, class) task, with shrinking budgets (0 = off)")
		retryBack  = fs.Duration("retry-backoff", core.DefaultRetryBackoff, "base jittered backoff between task retries")
		brkThresh  = fs.Int("breaker-threshold", 5, "consecutive terminal faults that trip a class's circuit breaker (0 = off)")
		brkCool    = fs.Duration("breaker-cooldown", core.DefaultBreakerCooldown, "open-breaker cool-down before a half-open probe")
		taskTO     = fs.Duration("task-timeout", 30*time.Second, "per-(file, class) task watchdog deadline (0 = none)")
		seed       = fs.Int64("seed", 2016, "training seed for the false positive predictor")
		maxFile    = fs.Int64("max-file-size", 0, "per-file size cap in bytes (0 = default 8 MiB, -1 = unlimited)")
		reportDir  = fs.String("report-dir", "", "persist each job's JSON report here (written atomically)")
		cacheDir   = fs.String("cache-dir", "", "result-store directory backing incremental scan requests (empty = no per-task reuse across restarts)")
		cacheMax   = fs.Int64("cache-max-bytes", 0, "result-store size cap; least-recently-used snapshots are evicted beyond it (0 = unbounded)")
		cacheBE    = fs.String("cache-backend", "", "remote result-store tier URL (http://host:port of a -cache-serve replica); overrides -cache-dir. Wrapped in the fault envelope: any backend error degrades the scan to cache-less, findings unchanged")
		cacheServe = fs.Bool("cache-serve", false, "serve this replica's result store at /cas/ as the shared tier other replicas point -cache-backend at (requires -cache-dir)")
		cacheOpTO  = fs.Duration("cache-op-timeout", resultstore.DefaultOpTimeout, "per-attempt deadline for remote cache operations")
		cacheRetry = fs.Int("cache-retry-max", resultstore.DefaultRetryMax, "retries per failed remote cache op (negative = off)")
		cacheBrkT  = fs.Int("cache-breaker-threshold", resultstore.DefaultBreakerThreshold, "consecutive remote-cache failures that open the backend breaker (negative = off)")
		cacheBrkC  = fs.Duration("cache-breaker-cooldown", resultstore.DefaultBreakerCooldown, "open backend breaker cool-down before its half-open probe")
		cacheQueue = fs.Int("cache-write-behind", resultstore.DefaultWriteBehindDepth, "bounded write-behind queue depth for remote cache saves (sheds oldest-first when full)")
		readHdrTO  = fs.Duration("read-header-timeout", server.DefaultReadHeaderTimeout, "HTTP listener: time to read a request's headers (slow-loris bound; negative = off)")
		readTO     = fs.Duration("read-timeout", server.DefaultReadTimeout, "HTTP listener: time to read a whole request, sized for tree uploads (negative = off)")
		idleTO     = fs.Duration("idle-timeout", server.DefaultIdleTimeout, "HTTP listener: keep-alive idle connection reap (negative = off)")
		jnlPath    = fs.String("journal", "", "write-ahead job journal path; makes async jobs durable across crashes (empty = async jobs are lost on crash)")
		ckptEvery  = fs.Int("checkpoint-every", 0, "engine tasks between mid-scan store checkpoints of durable jobs (0 = default, negative = off)")
		weaponsDir = fs.String("weapons-dir", "", "persist weapons accepted via POST /weapons here and replay them at startup (empty = hot weapons are lost on restart)")
		par        = fs.Int("parallelism", 0, "loader worker count per scan job (0 = GOMAXPROCS capped at 8)")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables it")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: wapd [flags]")
	}

	eng, err := buildEngine(engineParams{
		seed: *seed, taskTimeout: *taskTO,
		retryMax: *retryMax, retryBackoff: *retryBack,
		breakerThreshold: *brkThresh, breakerCooldown: *brkCool,
	})
	if err != nil {
		return err
	}
	fmt.Printf("training false positive predictor (%s)...\n", core.ModeWAPe)
	if err := eng.Train(); err != nil {
		return err
	}

	if *cacheServe && *cacheBE != "" {
		return fmt.Errorf("-cache-serve and -cache-backend are mutually exclusive: a replica either IS the shared tier or points at one")
	}
	if *cacheServe && *cacheDir == "" {
		return fmt.Errorf("-cache-serve requires -cache-dir (the directory the shared tier serves)")
	}
	var store *resultstore.Store
	switch {
	case *cacheBE != "":
		// Remote tier: the HTTP client wrapped in the full fault envelope
		// (per-op deadlines, bounded retries, circuit breaker), saves through
		// the bounded write-behind queue. Any fault degrades loads to misses
		// and sheds writes — findings are byte-identical to cache-less.
		env := resultstore.NewEnvelope(httpbackend.New(*cacheBE, nil), resultstore.EnvelopeConfig{
			OpTimeout:        *cacheOpTO,
			RetryMax:         *cacheRetry,
			BreakerThreshold: *cacheBrkT,
			BreakerCooldown:  *cacheBrkC,
		})
		store, err = resultstore.OpenBackend(env, resultstore.Options{
			MaxBytes:         *cacheMax,
			WriteBehind:      true,
			WriteBehindDepth: *cacheQueue,
		})
		if err != nil {
			return err
		}
		defer store.Close()
	case *cacheDir != "":
		store, err = resultstore.OpenOptions(*cacheDir, resultstore.Options{MaxBytes: *cacheMax})
		if err != nil {
			return err
		}
	}

	var jnl *journal.Journal
	if *jnlPath != "" {
		var replayed []journal.Record
		jnl, replayed, err = journal.Open(*jnlPath, journal.Options{})
		if err != nil {
			return err
		}
		defer jnl.Close()
		if n := len(replayed); n > 0 {
			fmt.Printf("wapd: journal %s replayed %d record(s)\n", *jnlPath, n)
		}
	}

	srv, err := server.New(server.Config{
		Engine:            eng,
		QueueDepth:        *queueDepth,
		Workers:           *workers,
		DrainTimeout:      *drainTO,
		DefaultTimeout:    *defaultTO,
		MaxTimeout:        *maxTO,
		LoadOptions:       core.LoadOptions{MaxFileSize: *maxFile, Parallelism: *par},
		ReportDir:         *reportDir,
		Store:             store,
		Journal:           jnl,
		CheckpointEvery:   *ckptEvery,
		WeaponsDir:        *weaponsDir,
		CacheServe:        *cacheServe,
		ReadHeaderTimeout: *readHdrTO,
		ReadTimeout:       *readTO,
		IdleTimeout:       *idleTO,
	})
	if err != nil {
		return err
	}

	// Opt-in pprof endpoint on its own listener, so profiling traffic never
	// shares the scan port (or its admission control).
	if *pprofAddr != "" {
		go func() {
			fmt.Printf("wapd: pprof listening on %s\n", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "wapd: pprof server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	context.AfterFunc(ctx, func() {
		fmt.Printf("wapd: signal received, draining (grace %s)\n", *drainTO)
	})
	fmt.Printf("wapd listening on %s (queue %d, workers %d)\n", *addr, *queueDepth, *workers)
	return srv.ListenAndServe(ctx, *addr)
}

type engineParams struct {
	seed             int64
	taskTimeout      time.Duration
	retryMax         int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
}

// buildEngine assembles the WAPe engine the service shares across jobs:
// every class, every built-in weapon, and the robustness knobs from flags.
func buildEngine(p engineParams) (*core.Engine, error) {
	opts := core.Options{
		Mode:             core.ModeWAPe,
		Seed:             p.seed,
		TaskTimeout:      p.taskTimeout,
		RetryMax:         p.retryMax,
		RetryBackoff:     p.retryBackoff,
		BreakerThreshold: p.breakerThreshold,
		BreakerCooldown:  p.breakerCooldown,
	}
	for _, spec := range weapon.BuiltinSpecs() {
		w, err := weapon.Generate(spec)
		if err != nil {
			return nil, err
		}
		opts.Weapons = append(opts.Weapons, w)
	}
	return core.New(opts)
}
