package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateWebSuite(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-out", out, "-suite", "web"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(out, "webapps"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 54 {
		t.Fatalf("apps on disk = %d, want 54", len(entries))
	}
	// Every app has a ground-truth manifest.
	truth, err := os.ReadFile(filepath.Join(out, "webapps", "vfront-0.99.3", "TRUTH.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(truth), "SQLI") || !strings.Contains(string(truth), "false-positive(custom-sanitizer)") {
		t.Errorf("manifest incomplete:\n%s", truth)
	}
}

func TestGenerateWPSuite(t *testing.T) {
	out := t.TempDir()
	if err := run([]string{"-out", out, "-suite", "wp"}); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Join(out, "plugins"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 115 {
		t.Fatalf("plugins on disk = %d, want 115", len(entries))
	}
}
