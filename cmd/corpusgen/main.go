// Command corpusgen materializes the synthetic evaluation corpus on disk:
// the 54 web-application packages and/or the 115 WordPress plugins, with a
// ground-truth manifest per application.
//
// Usage:
//
//	corpusgen -out corpus/               # both suites
//	corpusgen -out corpus/ -suite web    # web applications only
//	corpusgen -out corpus/ -suite wp     # WordPress plugins only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/corpus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	var (
		out   = fs.String("out", "corpus", "output directory")
		suite = fs.String("suite", "both", "which suite to generate: web, wp, or both")
		seed  = fs.Int64("seed", 2016, "generation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *suite == "web" || *suite == "both" {
		for _, app := range corpus.WebAppSuite(*seed) {
			if err := writeApp(filepath.Join(*out, "webapps"), app); err != nil {
				return err
			}
		}
		fmt.Printf("wrote 54 web applications to %s/webapps\n", *out)
	}
	if *suite == "wp" || *suite == "both" {
		for _, p := range corpus.WordPressSuite(*seed) {
			if err := writeApp(filepath.Join(*out, "plugins"), &p.App); err != nil {
				return err
			}
		}
		fmt.Printf("wrote 115 WordPress plugins to %s/plugins\n", *out)
	}
	return nil
}

func writeApp(root string, app *corpus.App) error {
	slug := strings.ToLower(strings.ReplaceAll(app.Name, " ", "-")) + "-" + app.Version
	dir := filepath.Join(root, slug)
	for _, path := range app.SortedPaths() {
		full := filepath.Join(dir, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(full, []byte(app.Files[path]), 0o644); err != nil {
			return err
		}
	}
	// Ground-truth manifest.
	var b strings.Builder
	fmt.Fprintf(&b, "# ground truth for %s %s\n", app.Name, app.Version)
	for _, s := range app.Spots {
		kind := "vulnerable"
		switch s.FP {
		case corpus.FPOriginalSymptoms:
			kind = "false-positive(original-symptoms)"
		case corpus.FPNewSymptoms:
			kind = "false-positive(new-symptoms)"
		case corpus.FPCustomSanitizer:
			kind = "false-positive(custom-sanitizer)"
		}
		fmt.Fprintf(&b, "%s %s %d-%d %s\n", s.Group, s.File, s.StartLine, s.EndLine, kind)
	}
	return os.WriteFile(filepath.Join(dir, "TRUTH.txt"), []byte(b.String()), 0o644)
}
