// Command wap analyzes PHP source trees for input-validation
// vulnerabilities, predicts false positives with the trained classifier
// ensemble, and optionally corrects the code by inserting fixes — the Go
// reproduction of the WAPe tool.
//
// Usage:
//
//	wap [flags] <dir>
//
// Class selection mirrors the paper's activation flags: -sqli, -xss, -rfi,
// -lfi, -dt, -osci, -scd, -phpci, -ldapi, -xpathi, -nosqli, -cs, -hi, -ei,
// -sf, -wpsqli. With no class flags every class (and the built-in weapons)
// is active.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wap", flag.ContinueOnError)
	var (
		v21      = fs.Bool("v21", false, "run as the original WAP v2.1 (8 classes, old predictor)")
		fix      = fs.Bool("fix", false, "write corrected copies of vulnerable files (*.fixed.php)")
		showFP   = fs.Bool("show-fp", false, "also list candidates predicted to be false positives")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON on stdout")
		htmlOut  = fs.String("html", "", "write an HTML report to this file")
		seed     = fs.Int64("seed", 2016, "training seed for the false positive predictor")
		sanList  = fs.String("san", "", "comma-separated project-specific sanitization functions")
		weaponFS = fs.String("weapon", "", "comma-separated weapon spec files to load")
		confPath = fs.String("conf", "", "project configuration file (default: <dir>/wap.conf if present)")
		compare  = fs.String("compare", "", "diff against an older version of the application at this directory")
	)
	classFlags := make(map[vuln.ClassID]*bool)
	for _, c := range vuln.WAPe() {
		classFlags[c.ID] = fs.Bool(string(c.ID), false, "detect "+c.Name)
	}
	classFlags[vuln.WPSQLI] = fs.Bool(string(vuln.WPSQLI), false, "detect SQLI via the WordPress weapon")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: wap [flags] <dir>")
	}
	dir := fs.Arg(0)

	opts := core.Options{Mode: core.ModeWAPe, Seed: *seed}
	if *v21 {
		opts.Mode = core.ModeOriginal
	}
	if *sanList != "" {
		opts.ExtraSanitizers = splitTrim(*sanList)
	}

	// Project configuration: explicit -conf, or <dir>/wap.conf when present.
	conf := *confPath
	if conf == "" {
		conf = filepath.Join(dir, "wap.conf")
	}
	pc, err := core.LoadProjectConfig(conf)
	if err != nil {
		return err
	}
	pc.ApplyTo(&opts)

	// Class selection.
	var selected []vuln.ClassID
	wantWP := false
	for id, on := range classFlags {
		if *on {
			if id == vuln.WPSQLI {
				wantWP = true
				continue
			}
			selected = append(selected, id)
		}
	}
	if selected != nil || wantWP {
		opts.Classes = selected
	}

	// Weapons: built-ins when running the full WAPe set or -wpsqli, plus any
	// user-provided spec files.
	if opts.Mode == core.ModeWAPe {
		for _, spec := range weapon.BuiltinSpecs() {
			// With an explicit class list, only the weapons asked for by
			// flag are loaded (currently -wpsqli); with no class flags all
			// built-in weapons run.
			if opts.Classes != nil && !(spec.Name == "wpsqli" && wantWP) {
				continue
			}
			w, err := weapon.Generate(spec)
			if err != nil {
				return err
			}
			opts.Weapons = append(opts.Weapons, w)
		}
		for _, path := range splitTrim(*weaponFS) {
			w, err := loadWeapon(path)
			if err != nil {
				return err
			}
			opts.Weapons = append(opts.Weapons, w)
		}
	} else if *weaponFS != "" {
		return fmt.Errorf("weapons require the new WAP version (drop -v21)")
	}

	eng, err := core.New(opts)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("training false positive predictor (%s)...\n", opts.Mode)
	}
	if err := eng.Train(); err != nil {
		return err
	}

	proj, err := core.LoadDir(filepath.Base(dir), dir)
	if err != nil {
		return err
	}
	if !*jsonOut {
		fmt.Printf("analyzing %s: %d files, %d lines\n", dir, len(proj.Files), proj.TotalLines())
	}
	rep, err := eng.Analyze(proj)
	if err != nil {
		return err
	}
	if *compare != "" {
		oldProj, err := core.LoadDir(filepath.Base(*compare), *compare)
		if err != nil {
			return err
		}
		oldRep, err := eng.Analyze(oldProj)
		if err != nil {
			return err
		}
		d := report.DiffFindings(report.Group(oldRep), report.Group(rep))
		fmt.Print(d.Render(*compare, dir))
		return nil
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := report.WriteHTML(f, rep); err != nil {
			return err
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	if *jsonOut {
		return report.WriteJSON(os.Stdout, rep)
	}

	grouped := report.Group(rep)
	nVuln, nFP := 0, 0
	for _, gf := range grouped {
		if gf.PredictedFP {
			nFP++
			if *showFP {
				fmt.Printf("  [predicted FP] %-6s %s:%d\n", gf.Group, gf.File, gf.Line)
				fmt.Printf("                 why: %s\n", eng.Justify(gf.Findings[0]))
			}
			continue
		}
		nVuln++
		f := gf.Findings[0]
		src := "?"
		if len(f.Candidate.Value.Sources) > 0 {
			src = f.Candidate.Value.Sources[0].Name
		}
		fmt.Printf("  [%s] %s:%d  %s -> %s\n", gf.Group, gf.File, gf.Line, src, f.Candidate.SinkName)
	}
	for _, l := range rep.StoredLinks {
		fmt.Printf("  [stored-XSS chain] table %s: write %s:%d -> read %s:%d\n",
			strings.ToLower(l.Table), l.Write.File, l.Write.SinkPos.Line,
			l.Read.File, l.Read.SinkPos.Line)
	}

	fmt.Printf("\n%d vulnerabilities, %d predicted false positives (%.0f ms)\n",
		nVuln, nFP, float64(rep.Duration.Milliseconds()))

	byGroup := make(map[string]int)
	for _, gf := range grouped {
		if !gf.PredictedFP {
			byGroup[string(gf.Group)]++
		}
	}
	groups := make([]string, 0, len(byGroup))
	for g := range byGroup {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("  %-8s %d\n", g, byGroup[g])
	}

	if *fix && nVuln > 0 {
		fixed, applied, err := eng.FixProject(rep)
		if err != nil {
			return err
		}
		for path, src := range fixed {
			out := filepath.Join(dir, path+".fixed.php")
			if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
				return err
			}
			if err := os.WriteFile(out, []byte(src), 0o644); err != nil {
				return err
			}
			fmt.Printf("fixed %s -> %s (%d corrections)\n", path, out, len(applied[path]))
		}
	}
	return nil
}

func loadWeapon(path string) (*weapon.Weapon, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load weapon: %w", err)
	}
	defer f.Close()
	spec, err := weapon.ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("weapon %s: %w", path, err)
	}
	return weapon.Generate(*spec)
}

func splitTrim(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
