// Command wap analyzes PHP source trees for input-validation
// vulnerabilities, predicts false positives with the trained classifier
// ensemble, and optionally corrects the code by inserting fixes — the Go
// reproduction of the WAPe tool.
//
// Usage:
//
//	wap [flags] <dir>
//
// Class selection mirrors the paper's activation flags: -sqli, -xss, -rfi,
// -lfi, -dt, -osci, -scd, -phpci, -ldapi, -xpathi, -nosqli, -cs, -hi, -ei,
// -sf, -wpsqli. With no class flags every class (and the built-in weapons)
// is active.
//
// Exit codes:
//
//	0  scan completed with full coverage, no vulnerabilities
//	1  scan completed with full coverage, vulnerabilities found
//	2  scan completed degraded: partial results plus diagnostics for what
//	   could not be analyzed (skipped files, panics, timeouts, budgets)
//	3  fatal error (bad usage, unreadable root directory, ...); with
//	   -strict, any degradation is also fatal
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/atomicfile"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/resultstore"
	"repro/internal/resultstore/httpbackend"
	"repro/internal/vuln"
	"repro/internal/weapon"
)

// Exit codes of the documented policy.
const (
	exitClean    = 0
	exitVulns    = 1
	exitDegraded = 2
	exitFatal    = 3
)

func main() {
	code, err := run(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "wap:", err)
	}
	os.Exit(code)
}

func run(args []string) (int, error) {
	fs := flag.NewFlagSet("wap", flag.ContinueOnError)
	var (
		v21      = fs.Bool("v21", false, "run as the original WAP v2.1 (8 classes, old predictor)")
		fix      = fs.Bool("fix", false, "write corrected copies of vulnerable files (*.fixed.php)")
		showFP   = fs.Bool("show-fp", false, "also list candidates predicted to be false positives")
		stats    = fs.Bool("stats", false, "print scan statistics (tasks, AST steps, summary cache, per-class wall time)")
		jsonOut  = fs.Bool("json", false, "emit the report as JSON on stdout")
		htmlOut  = fs.String("html", "", "write an HTML report to this file")
		seed     = fs.Int64("seed", 2016, "training seed for the false positive predictor")
		sanList  = fs.String("san", "", "comma-separated project-specific sanitization functions")
		weaponFS = fs.String("weapon", "", "comma-separated weapon spec files to load")
		confPath = fs.String("conf", "", "project configuration file (default: <dir>/wap.conf if present)")
		compare  = fs.String("compare", "", "diff against an older version of the application at this directory")
		timeout  = fs.Duration("timeout", 0, "overall scan deadline; on expiry the scan stops and reports partial results (0 = none)")
		taskTO   = fs.Duration("task-timeout", 0, "per-(file, class) task deadline; a stalled task is cut off and diagnosed (0 = none)")
		strict   = fs.Bool("strict", false, "treat any degradation (skipped files, panics, timeouts, budget exhaustion) as fatal (exit 3)")
		maxFile  = fs.Int64("max-file-size", 0, "per-file size cap in bytes; larger files are skipped with a diagnostic (0 = default 8 MiB, -1 = unlimited)")
		retryMax = fs.Int("retry-max", 0, "retry a faulted (file, class) task up to N times with shrinking AST-step budgets before diagnosing it (0 = off)")
		incr     = fs.Bool("incremental", false, "reuse per-task results from the previous scan of this tree (cached under <dir>/.wap-cache unless -cache-dir is set)")
		cacheDir = fs.String("cache-dir", "", "result-store directory for incremental scans (implies -incremental)")
		cacheMax = fs.Int64("cache-max-bytes", 0, "result-store size cap; least-recently-used snapshots are evicted beyond it (0 = unbounded)")
		cacheBE  = fs.String("cache-backend", "", "remote result-store tier URL (a wapd -cache-serve replica) for incremental scans; implies -incremental. A slow, flaky or dead tier degrades the scan to cache-less, findings unchanged")
		diffBase = fs.String("diff", "", "diff this scan against a baseline JSON report (from wap -json) and report new/fixed/persisting findings")
		par      = fs.Int("parallelism", 0, "worker count for both the parse front end and the scan (0 = GOMAXPROCS capped at 8)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	classFlags := make(map[vuln.ClassID]*bool)
	for _, c := range vuln.WAPe() {
		classFlags[c.ID] = fs.Bool(string(c.ID), false, "detect "+c.Name)
	}
	classFlags[vuln.WPSQLI] = fs.Bool(string(vuln.WPSQLI), false, "detect SQLI via the WordPress weapon")
	if err := fs.Parse(args); err != nil {
		return exitFatal, err
	}
	if fs.NArg() != 1 {
		return exitFatal, fmt.Errorf("usage: wap [flags] <dir>")
	}
	dir := fs.Arg(0)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return exitFatal, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return exitFatal, err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "wap: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recently freed objects for an accurate live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "wap: memprofile:", err)
			}
		}()
	}

	opts := core.Options{Mode: core.ModeWAPe, Seed: *seed, TaskTimeout: *taskTO, RetryMax: *retryMax, Parallelism: *par}
	if *v21 {
		opts.Mode = core.ModeOriginal
	}
	if *sanList != "" {
		opts.ExtraSanitizers = splitTrim(*sanList)
	}

	// Project configuration: explicit -conf, or <dir>/wap.conf when present.
	conf := *confPath
	if conf == "" {
		conf = filepath.Join(dir, "wap.conf")
	}
	pc, err := core.LoadProjectConfig(conf)
	if err != nil {
		return exitFatal, err
	}
	pc.ApplyTo(&opts)

	// Class selection.
	var selected []vuln.ClassID
	wantWP := false
	for id, on := range classFlags {
		if *on {
			if id == vuln.WPSQLI {
				wantWP = true
				continue
			}
			selected = append(selected, id)
		}
	}
	if selected != nil || wantWP {
		opts.Classes = selected
	}

	// Weapons: built-ins when running the full WAPe set or -wpsqli, plus any
	// user-provided spec files.
	if opts.Mode == core.ModeWAPe {
		for _, spec := range weapon.BuiltinSpecs() {
			// With an explicit class list, only the weapons asked for by
			// flag are loaded (currently -wpsqli); with no class flags all
			// built-in weapons run.
			if opts.Classes != nil && !(spec.Name == "wpsqli" && wantWP) {
				continue
			}
			w, err := weapon.Generate(spec)
			if err != nil {
				return exitFatal, err
			}
			opts.Weapons = append(opts.Weapons, w)
		}
		for _, path := range splitTrim(*weaponFS) {
			w, err := loadWeapon(path)
			if err != nil {
				return exitFatal, err
			}
			opts.Weapons = append(opts.Weapons, w)
		}
	} else if *weaponFS != "" {
		return exitFatal, fmt.Errorf("weapons require the new WAP version (drop -v21)")
	}

	// Incremental scans: attach a result store so this scan reuses the
	// previous run's per-task results and persists its own. -cache-backend
	// swaps the local directory for a shared remote tier behind the fault
	// envelope: the scan's findings cannot depend on the tier being up.
	switch {
	case *cacheBE != "":
		env := resultstore.NewEnvelope(httpbackend.New(*cacheBE, nil), resultstore.EnvelopeConfig{})
		store, err := resultstore.OpenBackend(env, resultstore.Options{
			MaxBytes:    *cacheMax,
			WriteBehind: true,
		})
		if err != nil {
			return exitFatal, err
		}
		defer store.Close()
		opts.ResultStore = store
	case *incr || *cacheDir != "":
		storeDir := *cacheDir
		if storeDir == "" {
			storeDir = filepath.Join(dir, ".wap-cache")
		}
		store, err := resultstore.OpenOptions(storeDir, resultstore.Options{MaxBytes: *cacheMax})
		if err != nil {
			return exitFatal, err
		}
		opts.ResultStore = store
	}

	eng, err := core.New(opts)
	if err != nil {
		return exitFatal, err
	}
	if !*jsonOut {
		fmt.Printf("training false positive predictor (%s)...\n", opts.Mode)
	}
	if err := eng.Train(); err != nil {
		return exitFatal, err
	}

	loadOpts := core.LoadOptions{MaxFileSize: *maxFile, Parallelism: *par}
	proj, err := core.LoadDirOptions(filepath.Base(dir), dir, loadOpts)
	if err != nil {
		return exitFatal, err
	}
	if !*jsonOut {
		fmt.Printf("analyzing %s: %d files, %d lines\n", dir, len(proj.Files), proj.TotalLines())
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	rep, err := eng.AnalyzeContext(ctx, proj)
	if err != nil {
		// A scan cut short by the -timeout deadline still yields partial
		// results with a diagnostic; anything else is fatal.
		if rep == nil || !errors.Is(err, context.DeadlineExceeded) {
			return exitFatal, err
		}
	}
	if *compare != "" {
		oldProj, err := core.LoadDirOptions(filepath.Base(*compare), *compare, loadOpts)
		if err != nil {
			return exitFatal, err
		}
		oldRep, err := eng.Analyze(oldProj)
		if err != nil {
			return exitFatal, err
		}
		d := report.DiffFindings(report.Group(oldRep), report.Group(rep))
		fmt.Print(d.Render(*compare, dir))
		return exitCode(rep, len(rep.Vulnerabilities()), *strict)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			return exitFatal, err
		}
		defer f.Close()
		if err := report.WriteHTML(f, rep); err != nil {
			return exitFatal, err
		}
		fmt.Printf("HTML report written to %s\n", *htmlOut)
	}
	// Baseline diff: compare this scan's confirmed findings against an
	// earlier JSON report of the same application.
	var diff *report.Diff
	if *diffBase != "" {
		baseline, err := loadBaseline(*diffBase)
		if err != nil {
			return exitFatal, err
		}
		diff = report.DiffFindings(report.GroupedFromJSON(baseline), report.Group(rep))
	}
	if *jsonOut {
		jr := report.ToJSON(rep)
		if diff != nil {
			jr.Diff = report.ToJSONDiff(diff)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jr); err != nil {
			return exitFatal, err
		}
		return exitCode(rep, len(rep.Vulnerabilities()), *strict)
	}

	nVuln, _ := report.WriteText(os.Stdout, rep, report.TextOptions{
		ShowFP:  *showFP,
		Justify: func(f *core.Finding) string { return eng.Justify(f).String() },
		Stats:   *stats,
	})
	if diff != nil {
		fmt.Printf("\n%s", diff.Render(*diffBase, dir))
	}

	if *fix && nVuln > 0 {
		fixed, applied, err := eng.FixProject(rep)
		if err != nil {
			return exitFatal, err
		}
		for path, src := range fixed {
			out := filepath.Join(dir, path+".fixed.php")
			if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
				return exitFatal, err
			}
			// Atomic write: corrected copies sit next to user PHP sources,
			// and a crash mid-write must never leave a truncated file.
			if err := atomicfile.WriteFile(out, []byte(src), 0o644); err != nil {
				return exitFatal, err
			}
			fmt.Printf("fixed %s -> %s (%d corrections)\n", path, out, len(applied[path]))
		}
	}
	return exitCode(rep, nVuln, *strict)
}

// exitCode applies the documented policy: degradation dominates (a partial
// scan must not read as a clean bill of health), vulnerabilities exit 1,
// and -strict escalates degradation to fatal.
func exitCode(rep *core.Report, nVuln int, strict bool) (int, error) {
	if rep.Degraded() {
		if strict {
			return exitFatal, fmt.Errorf("scan degraded (%d diagnostics) and -strict is set", len(rep.Diagnostics))
		}
		return exitDegraded, nil
	}
	if nVuln > 0 {
		return exitVulns, nil
	}
	return exitClean, nil
}

// loadBaseline reads a JSON report written by wap -json (or wapd).
func loadBaseline(path string) (*report.JSONReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("diff baseline: %w", err)
	}
	var jr report.JSONReport
	if err := json.Unmarshal(data, &jr); err != nil {
		return nil, fmt.Errorf("diff baseline %s: %w", path, err)
	}
	return &jr, nil
}

func loadWeapon(path string) (*weapon.Weapon, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("load weapon: %w", err)
	}
	defer f.Close()
	spec, err := weapon.ParseSpec(f)
	if err != nil {
		return nil, fmt.Errorf("weapon %s: %w", path, err)
	}
	return weapon.Generate(*spec)
}

func splitTrim(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
