package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeApp(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, src := range files {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const vulnerablePage = `<?php
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);
echo $_POST['msg'];
`

func TestRunBasic(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	code, err := run([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitVulns {
		t.Errorf("vulnerable app: exit code = %d, want %d", code, exitVulns)
	}
}

func TestRunCleanExitsZero(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": `<?php echo "hello";`})
	code, err := run([]string{dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitClean {
		t.Errorf("clean app: exit code = %d, want %d", code, exitClean)
	}
}

func TestRunDegradedExitCodes(t *testing.T) {
	// A 2-byte size cap forces every file to be skipped with a load-skipped
	// diagnostic: the scan completes degraded.
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	code, err := run([]string{"-max-file-size", "2", dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitDegraded {
		t.Errorf("degraded scan: exit code = %d, want %d", code, exitDegraded)
	}
	// -strict escalates degradation to fatal.
	code, err = run([]string{"-max-file-size", "2", "-strict", dir})
	if err == nil {
		t.Error("strict degraded scan: want an error")
	}
	if code != exitFatal {
		t.Errorf("strict degraded scan: exit code = %d, want %d", code, exitFatal)
	}
	// Without the cap the same tree is analyzed in full.
	code, err = run([]string{"-strict", dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitVulns {
		t.Errorf("strict full scan: exit code = %d, want %d", code, exitVulns)
	}
}

func TestRunTaskTimeoutFlagParses(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	code, err := run([]string{"-task-timeout", "30s", "-timeout", "1m", dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitVulns {
		t.Errorf("exit code = %d, want %d", code, exitVulns)
	}
}

func TestRunClassSelection(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if _, err := run([]string{"-sqli", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunV21Mode(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if _, err := run([]string{"-v21", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	code, err := run([]string{"-json", dir})
	if err != nil {
		t.Fatal(err)
	}
	if code != exitVulns {
		t.Errorf("json run: exit code = %d, want %d", code, exitVulns)
	}
}

func TestRunFixWritesFiles(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if _, err := run([]string{"-fix", dir}); err != nil {
		t.Fatal(err)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "index.php.fixed.php"))
	if err != nil {
		t.Fatalf("fixed file missing: %v", err)
	}
	if !strings.Contains(string(fixed), "san_sqli(") {
		t.Errorf("fix not applied:\n%s", fixed)
	}
}

func TestRunCustomWeaponFile(t *testing.T) {
	dir := writeApp(t, map[string]string{
		"index.php": `<?php zap($_GET['x']);`,
	})
	weaponFile := filepath.Join(t.TempDir(), "zapi.weapon")
	spec := `name zapi
sink zap arg=0
fix-template user_val
fix-chars ' "
`
	if err := os.WriteFile(weaponFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-weapon", weaponFile, dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if code, err := run([]string{}); err == nil || code != exitFatal {
		t.Errorf("want fatal usage error without a directory, got code %d err %v", code, err)
	}
	if code, err := run([]string{"/no/such/dir"}); err == nil || code != exitFatal {
		t.Errorf("want fatal error for missing directory, got code %d err %v", code, err)
	}
	dir := writeApp(t, map[string]string{"a.php": `<?php echo 1;`})
	if code, err := run([]string{"-weapon", "/no/such.weapon", dir}); err == nil || code != exitFatal {
		t.Errorf("want fatal error for missing weapon file, got code %d err %v", code, err)
	}
	// Weapons are a WAPe feature.
	if code, err := run([]string{"-v21", "-weapon", "/no/such.weapon", dir}); err == nil || code != exitFatal {
		t.Errorf("want fatal error for weapon with -v21, got code %d err %v", code, err)
	}
}

func TestSplitTrim(t *testing.T) {
	got := splitTrim(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitTrim = %v", got)
	}
	if splitTrim("") != nil {
		t.Error("empty input should be nil")
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	out := filepath.Join(t.TempDir(), "report.html")
	if _, err := run([]string{"-html", out, dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<!DOCTYPE html>") || !strings.Contains(string(data), "SQLI") {
		t.Errorf("HTML report incomplete")
	}
}

func TestRunShowFPWithJustification(t *testing.T) {
	dir := writeApp(t, map[string]string{"guard.php": `<?php
$id = $_GET['id'];
if (!isset($_GET['id']) || !is_numeric($id)) { exit; }
mysql_query("SELECT * FROM t WHERE id=" . $id);
`})
	if _, err := run([]string{"-show-fp", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	oldDir := writeApp(t, map[string]string{"a.php": `<?php echo $_GET['x'];`})
	newDir := writeApp(t, map[string]string{"a.php": `<?php
echo $_GET['x'];
mysql_query("SELECT " . $_GET['q']);`})
	if _, err := run([]string{"-compare", oldDir, newDir}); err != nil {
		t.Fatal(err)
	}
	if _, err := run([]string{"-compare", "/no/such/dir", newDir}); err == nil {
		t.Error("want error for missing compare dir")
	}
}
