package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeApp(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for path, src := range files {
		full := filepath.Join(dir, path)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const vulnerablePage = `<?php
mysql_query("SELECT * FROM t WHERE id=" . $_GET['id']);
echo $_POST['msg'];
`

func TestRunBasic(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if err := run([]string{dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunClassSelection(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if err := run([]string{"-sqli", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunV21Mode(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if err := run([]string{"-v21", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunJSON(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if err := run([]string{"-json", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFixWritesFiles(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	if err := run([]string{"-fix", dir}); err != nil {
		t.Fatal(err)
	}
	fixed, err := os.ReadFile(filepath.Join(dir, "index.php.fixed.php"))
	if err != nil {
		t.Fatalf("fixed file missing: %v", err)
	}
	if !strings.Contains(string(fixed), "san_sqli(") {
		t.Errorf("fix not applied:\n%s", fixed)
	}
}

func TestRunCustomWeaponFile(t *testing.T) {
	dir := writeApp(t, map[string]string{
		"index.php": `<?php zap($_GET['x']);`,
	})
	weaponFile := filepath.Join(t.TempDir(), "zapi.weapon")
	spec := `name zapi
sink zap arg=0
fix-template user_val
fix-chars ' "
`
	if err := os.WriteFile(weaponFile, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-weapon", weaponFile, dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("want usage error without a directory")
	}
	if err := run([]string{"/no/such/dir"}); err == nil {
		t.Error("want error for missing directory")
	}
	dir := writeApp(t, map[string]string{"a.php": `<?php echo 1;`})
	if err := run([]string{"-weapon", "/no/such.weapon", dir}); err == nil {
		t.Error("want error for missing weapon file")
	}
	// Weapons are a WAPe feature.
	if err := run([]string{"-v21", "-weapon", "/no/such.weapon", dir}); err == nil {
		t.Error("want error for weapon with -v21 or missing file")
	}
}

func TestSplitTrim(t *testing.T) {
	got := splitTrim(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Errorf("splitTrim = %v", got)
	}
	if splitTrim("") != nil {
		t.Error("empty input should be nil")
	}
}

func TestRunHTMLReport(t *testing.T) {
	dir := writeApp(t, map[string]string{"index.php": vulnerablePage})
	out := filepath.Join(t.TempDir(), "report.html")
	if err := run([]string{"-html", out, dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<!DOCTYPE html>") || !strings.Contains(string(data), "SQLI") {
		t.Errorf("HTML report incomplete")
	}
}

func TestRunShowFPWithJustification(t *testing.T) {
	dir := writeApp(t, map[string]string{"guard.php": `<?php
$id = $_GET['id'];
if (!isset($_GET['id']) || !is_numeric($id)) { exit; }
mysql_query("SELECT * FROM t WHERE id=" . $id);
`})
	if err := run([]string{"-show-fp", dir}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCompare(t *testing.T) {
	oldDir := writeApp(t, map[string]string{"a.php": `<?php echo $_GET['x'];`})
	newDir := writeApp(t, map[string]string{"a.php": `<?php
echo $_GET['x'];
mysql_query("SELECT " . $_GET['q']);`})
	if err := run([]string{"-compare", oldDir, newDir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-compare", "/no/such/dir", newDir}); err == nil {
		t.Error("want error for missing compare dir")
	}
}
